#ifndef SMI_CORE_CHANNEL_H
#define SMI_CORE_CHANNEL_H

/// \file channel.h
/// Point-to-point transient channels (§3.1).
///
/// A channel is opened with a message length, datatype, peer rank, port and
/// communicator, and then accessed with a cycle-by-cycle streaming
/// interface: `co_await ch.Push(v)` / `co_await ch.Pop<T>()`. Push
/// accumulates elements into a network packet and forwards the packet to the
/// CKS when full (or when the message ends); Pop unpacks packets arriving
/// from the CKR. Both pipeline to II=1 and block on backpressure, exactly
/// the contract of SMI_Push/SMI_Pop.
///
/// Opening a channel is a zero-overhead operation: it only records where
/// packets should go (the eager protocol of §3.3 — no handshake, relying on
/// network backpressure).

#include <cstdint>
#include <string>

#include "core/types.h"
#include "net/packet.h"
#include "sim/kernel.h"

namespace smi::core {

using PacketFifo = sim::Fifo<net::Packet>;

/// Common bookkeeping for send/recv channels.
class ChannelBase {
 public:
  ChannelBase(int count, DataType type, int peer_global, int port)
      : count_(count), type_(type), peer_global_(peer_global), port_(port) {
    if (count < 0) throw ConfigError("message length must be >= 0");
  }

  int count() const { return count_; }
  DataType type() const { return type_; }
  int port() const { return port_; }
  /// Elements pushed/popped so far.
  int transferred() const { return transferred_; }
  /// True once the full message has been streamed; the channel is then
  /// implicitly closed (§3.1.1).
  bool closed() const { return transferred_ >= count_; }

  /// True if the channel already performed its one operation of cycle `now`
  /// (the II=1 guard). Used by the awaitables' wake hints: this is the only
  /// failure mode that clears without endpoint-FIFO activity.
  bool OpThisCycle(sim::Cycle now) const { return last_op_cycle_ == now; }

 protected:
  template <typename T>
  void CheckType() const {
    if (DataTypeOf<T>::value != type_) {
      throw ConfigError(std::string("channel datatype mismatch: declared ") +
                        DataTypeName(type_) + ", accessed as " +
                        DataTypeName(DataTypeOf<T>::value));
    }
  }

  int count_;
  DataType type_;
  int peer_global_;
  int port_;
  int transferred_ = 0;
  sim::Cycle last_op_cycle_ = ~sim::Cycle{0};
};

class SendChannel;
class RecvChannel;

namespace detail {

/// Awaitable for SendChannel::Push. Stages the element into the channel's
/// packet buffer; when the packet fills (or the message ends) it must also
/// secure the endpoint FIFO's write port, stalling on backpressure.
template <typename T>
struct PushAwaitable;
/// Awaitable for RecvChannel::Pop.
template <typename T>
struct PopAwaitable;
/// Awaitable for SendChannel::PushPacket (wide datapath).
template <typename T>
struct PushPacketAwaitable;
/// Awaitable for RecvChannel::PopPacket (wide datapath).
template <typename T>
struct PopPacketAwaitable;

}  // namespace detail

/// Send side of a transient channel (`SMI_Open_send_channel`).
class SendChannel : public ChannelBase {
 public:
  /// `src_global`/`dst_global` are wire-level ranks; `fifo` is the
  /// application endpoint bound to this channel's port.
  SendChannel(PacketFifo& fifo, int count, DataType type, int src_global,
              int dst_global, int port)
      : ChannelBase(count, type, dst_global, port),
        fifo_(&fifo),
        src_global_(src_global) {}

  /// Stream one element (SMI_Push). Blocking; pipelines to II=1.
  template <typename T>
  detail::PushAwaitable<T> Push(const T& value) {
    CheckType<T>();
    return detail::PushAwaitable<T>(this, value);
  }

  /// Wide-datapath extension: stream up to ElementsPerPacket(type) elements
  /// in a single cycle, producing one network packet. `n` may be smaller
  /// only for the final packet of the message.
  template <typename T>
  detail::PushPacketAwaitable<T> PushPacket(const T* values, int n) {
    CheckType<T>();
    if (n <= 0 || static_cast<std::size_t>(n) > ElementsPerPacket(type_)) {
      throw ConfigError("PushPacket element count out of range");
    }
    return detail::PushPacketAwaitable<T>(this, values, n);
  }

  /// Endpoint FIFO backing this channel (for blocker wake hints).
  const PacketFifo* endpoint_fifo() const { return fifo_; }

 private:
  template <typename T>
  friend struct detail::PushAwaitable;
  template <typename T>
  friend struct detail::PushPacketAwaitable;

  /// True if one element can be accepted at `now`; performs the staging and
  /// possible packet flush when it can.
  template <typename T>
  bool TryPush(sim::Cycle now, const T& value);
  template <typename T>
  bool TryPushPacket(sim::Cycle now, const T* values, int n);

  net::Packet MakeDataPacket(std::uint8_t count_in_packet) const;

  PacketFifo* fifo_;
  int src_global_;
  net::Packet staging_{};
  int staged_ = 0;
};

/// Receive side of a transient channel (`SMI_Open_recv_channel`).
class RecvChannel : public ChannelBase {
 public:
  RecvChannel(PacketFifo& fifo, int count, DataType type, int src_global,
              int port)
      : ChannelBase(count, type, src_global, port), fifo_(&fifo) {}

  /// Stream one element out of the channel (SMI_Pop).
  template <typename T>
  detail::PopAwaitable<T> Pop() {
    CheckType<T>();
    return detail::PopAwaitable<T>(this);
  }

  /// Wide-datapath extension: consume one whole network packet per cycle.
  /// Returns the number of elements written to `out` (the packet's count).
  template <typename T>
  detail::PopPacketAwaitable<T> PopPacket() {
    CheckType<T>();
    return detail::PopPacketAwaitable<T>(this);
  }

  /// Endpoint FIFO backing this channel (for blocker wake hints).
  const PacketFifo* endpoint_fifo() const { return fifo_; }

 private:
  template <typename T>
  friend struct detail::PopAwaitable;
  template <typename T>
  friend struct detail::PopPacketAwaitable;

  template <typename T>
  bool TryPop(sim::Cycle now, T& out);
  template <typename T>
  bool TryPopPacket(sim::Cycle now, T* out, int& n_out);

  PacketFifo* fifo_;
  net::Packet current_{};
  int consumed_in_packet_ = 0;
  bool has_packet_ = false;
};

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

template <typename T>
bool SendChannel::TryPush(sim::Cycle now, const T& value) {
  if (closed()) {
    throw ConfigError("SMI_Push beyond the declared message length (" +
                      std::to_string(count_) + ")");
  }
  if (last_op_cycle_ == now) return false;  // II=1: one element per cycle
  const int epp = static_cast<int>(ElementsPerPacket(type_));
  const bool will_flush =
      (staged_ + 1 == epp) || (transferred_ + 1 == count_);
  if (will_flush && !fifo_->CanPush(now)) return false;  // backpressure
  staging_.StoreBytes(static_cast<std::size_t>(staged_) * SizeOf(type_),
                      &value, sizeof(T));
  ++staged_;
  ++transferred_;
  if (will_flush) {
    net::Packet pkt = staging_;
    pkt.hdr = MakeDataPacket(static_cast<std::uint8_t>(staged_)).hdr;
    fifo_->Push(pkt, now);
    staged_ = 0;
  }
  last_op_cycle_ = now;
  return true;
}

template <typename T>
bool SendChannel::TryPushPacket(sim::Cycle now, const T* values, int n) {
  if (transferred_ + n > count_) {
    throw ConfigError("PushPacket beyond the declared message length");
  }
  if (staged_ != 0) {
    throw ConfigError("PushPacket on a channel with partially staged data");
  }
  if (last_op_cycle_ == now) return false;
  if (!fifo_->CanPush(now)) return false;
  net::Packet pkt = MakeDataPacket(static_cast<std::uint8_t>(n));
  for (int i = 0; i < n; ++i) {
    pkt.StoreBytes(static_cast<std::size_t>(i) * SizeOf(type_), &values[i],
                   sizeof(T));
  }
  fifo_->Push(pkt, now);
  transferred_ += n;
  last_op_cycle_ = now;
  return true;
}

inline net::Packet SendChannel::MakeDataPacket(
    std::uint8_t count_in_packet) const {
  net::Packet pkt;
  pkt.hdr.src = static_cast<std::uint16_t>(src_global_);
  pkt.hdr.dst = static_cast<std::uint16_t>(peer_global_);
  pkt.hdr.port = static_cast<std::uint8_t>(port_);
  pkt.hdr.op = net::OpType::kData;
  pkt.hdr.count = count_in_packet;
  return pkt;
}

template <typename T>
bool RecvChannel::TryPop(sim::Cycle now, T& out) {
  if (closed()) {
    throw ConfigError("SMI_Pop beyond the declared message length (" +
                      std::to_string(count_) + ")");
  }
  if (last_op_cycle_ == now) return false;
  if (!has_packet_) {
    if (!fifo_->CanPop(now)) return false;
    current_ = fifo_->Pop(now);
    consumed_in_packet_ = 0;
    has_packet_ = true;
  }
  current_.LoadBytes(
      static_cast<std::size_t>(consumed_in_packet_) * SizeOf(type_), &out,
      sizeof(T));
  ++consumed_in_packet_;
  ++transferred_;
  if (consumed_in_packet_ >= current_.hdr.count) has_packet_ = false;
  last_op_cycle_ = now;
  return true;
}

template <typename T>
bool RecvChannel::TryPopPacket(sim::Cycle now, T* out, int& n_out) {
  if (closed()) {
    throw ConfigError("PopPacket beyond the declared message length");
  }
  if (has_packet_) {
    throw ConfigError("PopPacket on a channel with partially consumed data");
  }
  if (last_op_cycle_ == now) return false;
  if (!fifo_->CanPop(now)) return false;
  const net::Packet pkt = fifo_->Pop(now);
  n_out = pkt.hdr.count;
  for (int i = 0; i < n_out; ++i) {
    pkt.LoadBytes(static_cast<std::size_t>(i) * SizeOf(type_), &out[i],
                  sizeof(T));
  }
  transferred_ += n_out;
  last_op_cycle_ = now;
  return true;
}

namespace detail {

template <typename T>
struct PushAwaitable final : sim::detail::AwaitableBase<PushAwaitable<T>> {
  PushAwaitable(SendChannel* c, const T& v) : chan(c), value(v) {}
  SendChannel* chan;
  T value;
  bool TryComplete(sim::Cycle now) override {
    return chan->TryPush(now, value);
  }
  std::string Describe() const override {
    return "SMI_Push on port " + std::to_string(chan->port());
  }
  void WatchFifos(std::vector<const sim::FifoBase*>& out) const override {
    out.push_back(chan->endpoint_fifo());
  }
  sim::Cycle NextPollCycle(sim::Cycle now) const override {
    return chan->OpThisCycle(now) ? now + 1 : sim::kNeverCycle;
  }
  void await_resume() const noexcept {}
};

template <typename T>
struct PopAwaitable final : sim::detail::AwaitableBase<PopAwaitable<T>> {
  explicit PopAwaitable(RecvChannel* c) : chan(c) {}
  RecvChannel* chan;
  T value{};
  bool TryComplete(sim::Cycle now) override { return chan->TryPop(now, value); }
  std::string Describe() const override {
    return "SMI_Pop on port " + std::to_string(chan->port());
  }
  void WatchFifos(std::vector<const sim::FifoBase*>& out) const override {
    out.push_back(chan->endpoint_fifo());
  }
  sim::Cycle NextPollCycle(sim::Cycle now) const override {
    return chan->OpThisCycle(now) ? now + 1 : sim::kNeverCycle;
  }
  T await_resume() noexcept { return value; }
};

template <typename T>
struct PushPacketAwaitable final
    : sim::detail::AwaitableBase<PushPacketAwaitable<T>> {
  PushPacketAwaitable(SendChannel* c, const T* vals, int count)
      : chan(c), n(count) {
    for (int i = 0; i < count; ++i) {
      values[static_cast<std::size_t>(i)] = vals[i];
    }
  }
  SendChannel* chan;
  std::array<T, net::kPayloadBytes / sizeof(T)> values{};
  int n;
  bool TryComplete(sim::Cycle now) override {
    return chan->TryPushPacket(now, values.data(), n);
  }
  std::string Describe() const override {
    return "SMI_Push (wide) on port " + std::to_string(chan->port());
  }
  void WatchFifos(std::vector<const sim::FifoBase*>& out) const override {
    out.push_back(chan->endpoint_fifo());
  }
  sim::Cycle NextPollCycle(sim::Cycle now) const override {
    return chan->OpThisCycle(now) ? now + 1 : sim::kNeverCycle;
  }
  void await_resume() const noexcept {}
};

template <typename T>
struct PopPacketAwaitable final
    : sim::detail::AwaitableBase<PopPacketAwaitable<T>> {
  explicit PopPacketAwaitable(RecvChannel* c) : chan(c) {}
  RecvChannel* chan;
  std::array<T, net::kPayloadBytes / sizeof(T)> values{};
  int n = 0;
  bool TryComplete(sim::Cycle now) override {
    return chan->TryPopPacket(now, values.data(), n);
  }
  std::string Describe() const override {
    return "SMI_Pop (wide) on port " + std::to_string(chan->port());
  }
  void WatchFifos(std::vector<const sim::FifoBase*>& out) const override {
    out.push_back(chan->endpoint_fifo());
  }
  sim::Cycle NextPollCycle(sim::Cycle now) const override {
    return chan->OpThisCycle(now) ? now + 1 : sim::kNeverCycle;
  }
  /// Returns (pointer, count); the data lives in the awaitable frame.
  std::pair<const T*, int> await_resume() noexcept {
    return {values.data(), n};
  }
};

}  // namespace detail
}  // namespace smi::core

#endif  // SMI_CORE_CHANNEL_H
