#include <algorithm>
#include <map>
#include <vector>

#include "common/error.h"
#include "core/coll_tree.h"
#include "core/support.h"

/// \file support_allreduce.cpp
/// Allreduce support kernel: the reduce-then-broadcast composition on a
/// single collective port (§4.4 names composition of the existing support
/// kernels as the path to further collectives). One kernel instance carries
/// both phases:
///
///  * Up phase — identical protocol to (Tree)Reduce: every node folds its
///    application stream with its children's partials in a C-deep window
///    and forwards completed elements to its parent, tile by tile under
///    per-edge credit flow control. Unlike Reduce, *all* credits are
///    explicit (including tile 0): a parent grants tile 0 when it enters
///    the open, so a fast child can never push data from open k+1 into a
///    parent still folding open k.
///  * Down phase — the root's completed results double as the broadcast
///    payload: each result is delivered to the local application and
///    forwarded down the same tree, one child per cycle. Elements travel
///    one per packet in both phases because the Allreduce channel is a
///    per-element request/response rendezvous (see the in-loop comments).
///    No READY rendezvous is needed: a down packet for open k can only
///    exist after every rank contributed to open k, which implies every
///    rank has entered open k.
///
/// Credits that arrive while a node is still draining the previous open's
/// down phase are banked in a ledger keyed by the granting rank (the same
/// role the READY ledger plays for Bcast/Scatter) and consumed when the
/// next open needs them.
///
/// The tree shape is a build-time parameter: kLinear is a flat tree (rank 0
/// parents all n-1 peers — the linear Reduce/Bcast pair), kTree the
/// binomial tree of coll_tree.h with logarithmic fan-in/out at every node.

namespace smi::core {
namespace {

using net::OpType;
using net::Packet;
using sim::Cycle;
using sim::Kernel;
using sim::NextCycle;
using sim::fifo_pop;

CollConfig GetConfig(CollToken&& tok, const char* kernel) {
  if (!std::holds_alternative<CollConfig>(tok)) {
    throw ConfigError(std::string(kernel) +
                      ": expected a channel-open config token");
  }
  return std::get<CollConfig>(std::move(tok));
}

Element GetElement(CollToken&& tok, const char* kernel) {
  if (!std::holds_alternative<Element>(tok)) {
    throw ConfigError(std::string(kernel) +
                      ": expected a data element, got a config token");
  }
  return std::get<Element>(tok);
}

int MyCommRank(const CollConfig& cfg, int my_global, const char* kernel) {
  for (std::size_t i = 0; i < cfg.comm_global.size(); ++i) {
    if (cfg.comm_global[i] == my_global) return static_cast<int>(i);
  }
  throw ConfigError(std::string(kernel) + ": rank not in communicator");
}

Packet MakeSync(const SupportCtx& ctx, int dst_global, OpType op) {
  Packet p;
  p.hdr.src = static_cast<std::uint16_t>(ctx.my_global);
  p.hdr.dst = static_cast<std::uint16_t>(dst_global);
  p.hdr.port = static_cast<std::uint8_t>(ctx.port);
  p.hdr.op = op;
  return p;
}

void PackElement(Packet& pkt, int index, const Element& e, std::size_t size) {
  pkt.StoreBytes(static_cast<std::size_t>(index) * size, e.bytes.data(), size);
}

Element UnpackElement(const Packet& pkt, int index, std::size_t size) {
  Element e;
  pkt.LoadBytes(static_cast<std::size_t>(index) * size, e.bytes.data(), size);
  return e;
}

/// Root-relative rank -> global rank.
int RelToGlobal(const CollConfig& cfg, int rel) {
  const int n = static_cast<int>(cfg.comm_global.size());
  const int comm_rank = (rel + cfg.root_comm) % n;
  return cfg.comm_global[static_cast<std::size_t>(comm_rank)];
}

}  // namespace

Kernel AllreduceSupportKernel(SupportCtx ctx, CollAlgo algo) {
  // Credits banked across opens, keyed by the granting (parent) global
  // rank. Grants for open k+1 can arrive while this node still drains open
  // k's down phase; totals per edge balance exactly (ceil(count/C) grants
  // granted and consumed per open), so nothing leaks between parents.
  std::map<int, int> credit_ledger;
  for (;;) {
    const CollConfig cfg =
        GetConfig(co_await fifo_pop(*ctx.app_in), "AllreduceSupport");
    NotifyCollectiveSyncPoint(ctx);  // channel open
    const int n = static_cast<int>(cfg.comm_global.size());
    const int me = MyCommRank(cfg, ctx.my_global, "AllreduceSupport");
    const int rel = (me - cfg.root_comm + n) % n;
    std::vector<int> children_rel;
    int parent_rel = -1;
    if (algo == CollAlgo::kTree) {
      children_rel = BinomialChildren(rel, n);
      parent_rel = rel == 0 ? -1 : BinomialParent(rel);
    } else {
      // Flat tree: relative rank 0 parents every other rank.
      if (rel == 0) {
        for (int r = 1; r < n; ++r) children_rel.push_back(r);
      } else {
        parent_rel = 0;
      }
    }
    const bool is_root = rel == 0;
    const int parent_global =
        parent_rel < 0 ? -1 : RelToGlobal(cfg, parent_rel);
    std::vector<int> child_globals;
    for (const int child : children_rel) {
      child_globals.push_back(RelToGlobal(cfg, child));
    }
    const std::size_t esz = SizeOf(cfg.type);
    const int C = std::max(1, cfg.credits);
    const int sources = 1 + static_cast<int>(child_globals.size());

    if (cfg.count == 0) continue;

    // --- Up phase (reduce toward rel 0) ---
    std::vector<Element> accum(static_cast<std::size_t>(C),
                               ReduceIdentity(cfg.op, cfg.type));
    std::vector<int> contrib(static_cast<std::size_t>(C), 0);
    std::map<int, int> child_next;  // per child global rank: next element
    for (const int g : child_globals) child_next[g] = 0;
    int local_next = 0;
    int up_done = 0;        // elements fully folded and dispatched upward
                            // (at the root: delivered + staged downward)
    int granted_tiles = 1;  // tiles granted to children (tile 0 below)
    int parent_tiles = 0;   // tiles of parent credit consumed this open
    std::vector<int> pending_credits = child_globals;  // explicit tile-0 grant
    Packet up_pkt =
        MakeSync(ctx, parent_global < 0 ? 0 : parent_global, OpType::kData);

    // --- Down phase (result broadcast from rel 0) ---
    int delivered = 0;  // result elements pushed to the application
    Packet down_pkt = MakeSync(ctx, 0, OpType::kData);  // root result staging
    std::vector<int> fwd_pending;  // children still owed the current packet
    Packet cur_down;               // non-root: packet being delivered
    int deliver_idx = 0;
    bool have_down = false;

    while (up_done < cfg.count || delivered < cfg.count ||
           !fwd_pending.empty() || have_down) {
      const Cycle now = *ctx.now;
      // (1) Advance the up phase: once every source contributed the next
      // element, it becomes a result (root) or flows to the parent under
      // credit flow control.
      if (up_done < cfg.count &&
          contrib[static_cast<std::size_t>(up_done % C)] == sources) {
        const std::size_t slot = static_cast<std::size_t>(up_done % C);
        bool advanced = false;
        if (is_root) {
          // The result is final: deliver locally and stage it into the down
          // packet, which must not still be in flight to the children.
          if (fwd_pending.empty() && ctx.app_out->CanPush(now)) {
            ctx.app_out->Push(CollToken(accum[slot]), now);
            ++delivered;
            if (!child_globals.empty()) {
              // Same per-element rendezvous constraint as the up phase: a
              // result held in a partially filled down packet would block
              // every non-root rank's pop of that result.
              PackElement(down_pkt, 0, accum[slot], esz);
              down_pkt.hdr.count = 1;
              fwd_pending = child_globals;
            }
            advanced = true;
          }
        } else {
          if (up_done >= parent_tiles * C &&
              credit_ledger[parent_global] > 0) {
            --credit_ledger[parent_global];
            ++parent_tiles;
          }
          if (up_done < parent_tiles * C &&
              ctx.net_out->CanPush(now)) {
            // One element per packet: the Allreduce channel is a per-element
            // request/response rendezvous (the application pushes element i
            // and blocks until result i returns), so holding element i in a
            // partially filled packet would stall the whole communicator.
            PackElement(up_pkt, 0, accum[slot], esz);
            up_pkt.hdr.count = 1;
            ctx.net_out->Push(up_pkt, now);
            advanced = true;
          }
        }
        if (advanced) {
          accum[slot] = ReduceIdentity(cfg.op, cfg.type);
          contrib[slot] = 0;
          ++up_done;
          if (up_done % C == 0 && granted_tiles * C < cfg.count) {
            ++granted_tiles;
            for (const int g : child_globals) pending_credits.push_back(g);
          }
        }
      }
      // (2) Fold one local element within the accumulation window.
      if (local_next < cfg.count && local_next < up_done + C &&
          ctx.app_in->CanPop(now)) {
        const Element e =
            GetElement(ctx.app_in->Pop(now), "AllreduceSupport");
        const std::size_t slot = static_cast<std::size_t>(local_next % C);
        accum[slot] = ApplyReduceOp(cfg.op, cfg.type, accum[slot], e);
        ++contrib[slot];
        ++local_next;
      }
      // (3) Classify one incoming packet: parent credit, parent down-data,
      // or child contribution. Held back while a down packet is still being
      // delivered, so down packets are consumed strictly in order.
      if (!have_down && ctx.net_in->CanPop(now)) {
        const Packet p = ctx.net_in->Pop(now);
        if (p.hdr.op == OpType::kCredit) {
          ++credit_ledger[p.hdr.src];
        } else if (p.hdr.op == OpType::kData && p.hdr.src == parent_global) {
          cur_down = p;
          deliver_idx = 0;
          have_down = true;
          fwd_pending = child_globals;
        } else if (p.hdr.op == OpType::kData &&
                   child_next.count(p.hdr.src) != 0) {
          auto& next = child_next[p.hdr.src];
          for (int e = 0; e < p.hdr.count; ++e) {
            const int idx = next++;
            if (idx >= granted_tiles * C) {
              throw ConfigError(
                  "AllreduceSupport: child exceeded its credit window");
            }
            const std::size_t slot = static_cast<std::size_t>(idx % C);
            accum[slot] = ApplyReduceOp(cfg.op, cfg.type, accum[slot],
                                        UnpackElement(p, e, esz));
            ++contrib[slot];
          }
        } else {
          throw ConfigError("AllreduceSupport: unexpected packet: " +
                            p.DebugString());
        }
      }
      // (4) Deliver one element of the current down packet to the
      // application.
      if (have_down && deliver_idx < cur_down.hdr.count &&
          ctx.app_out->CanPush(now)) {
        ctx.app_out->Push(CollToken(UnpackElement(cur_down, deliver_idx, esz)),
                          now);
        ++deliver_idx;
        ++delivered;
      }
      // (5) Forward the staged/current down packet to one child per cycle.
      if (!fwd_pending.empty() && ctx.net_out->CanPush(now)) {
        Packet p = is_root ? down_pkt : cur_down;
        p.hdr.src = static_cast<std::uint16_t>(ctx.my_global);
        p.hdr.dst = static_cast<std::uint16_t>(fwd_pending.back());
        ctx.net_out->Push(p, now);
        fwd_pending.pop_back();
      }
      if (have_down && deliver_idx == cur_down.hdr.count &&
          fwd_pending.empty()) {
        have_down = false;
      }
      // (6) Send one pending credit to a child.
      if (!pending_credits.empty() && ctx.net_out->CanPush(now)) {
        ctx.net_out->Push(
            MakeSync(ctx, pending_credits.back(), OpType::kCredit), now);
        pending_credits.pop_back();
      }
      co_await NextCycle{};
    }
    NotifyCollectiveSyncPoint(ctx);  // channel close
  }
}

}  // namespace smi::core
