#include "core/comm.h"

#include <algorithm>
#include <set>

namespace smi::core {

Communicator Communicator::World(int world_size) {
  if (world_size < 1) throw ConfigError("world size must be >= 1");
  std::vector<int> ranks(static_cast<std::size_t>(world_size));
  for (int i = 0; i < world_size; ++i) ranks[static_cast<std::size_t>(i)] = i;
  return Communicator(std::move(ranks));
}

Communicator::Communicator(std::vector<int> global_ranks)
    : global_ranks_(std::move(global_ranks)) {
  if (global_ranks_.empty()) {
    throw ConfigError("communicator cannot be empty");
  }
  std::set<int> seen;
  for (const int r : global_ranks_) {
    if (r < 0) throw ConfigError("negative rank in communicator");
    if (!seen.insert(r).second) {
      throw ConfigError("duplicate rank " + std::to_string(r) +
                        " in communicator");
    }
  }
}

int Communicator::GlobalRank(int comm_rank) const {
  if (comm_rank < 0 || comm_rank >= size()) {
    throw ConfigError("communicator rank " + std::to_string(comm_rank) +
                      " out of range (size " + std::to_string(size()) + ")");
  }
  return global_ranks_[static_cast<std::size_t>(comm_rank)];
}

int Communicator::CommRank(int global_rank) const {
  const auto it =
      std::find(global_ranks_.begin(), global_ranks_.end(), global_rank);
  if (it == global_ranks_.end()) {
    throw ConfigError("global rank " + std::to_string(global_rank) +
                      " is not a member of this communicator");
  }
  return static_cast<int>(it - global_ranks_.begin());
}

bool Communicator::Contains(int global_rank) const {
  return std::find(global_ranks_.begin(), global_ranks_.end(), global_rank) !=
         global_ranks_.end();
}

Communicator Communicator::Subset(const std::vector<int>& members) const {
  std::vector<int> ranks;
  ranks.reserve(members.size());
  for (const int m : members) ranks.push_back(GlobalRank(m));
  return Communicator(std::move(ranks));
}

}  // namespace smi::core
