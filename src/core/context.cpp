#include "core/context.h"

#include "common/error.h"

namespace smi::core {

SendChannel Context::OpenSendChannel(int count, DataType type, int destination,
                                     int port, const Communicator& comm) {
  const int dst_global = comm.GlobalRank(destination);
  return SendChannel(fabric_->SendEndpoint(rank_, port), count, type, rank_,
                     dst_global, port);
}

RecvChannel Context::OpenRecvChannel(int count, DataType type, int source,
                                     int port, const Communicator& comm) {
  const int src_global = comm.GlobalRank(source);
  return RecvChannel(fabric_->RecvEndpoint(rank_, port), count, type,
                     src_global, port);
}

const Context::CollPort& Context::FindCollPort(int port, CollKind kind,
                                               DataType type) const {
  const auto it = coll_ports_.find(port);
  if (it == coll_ports_.end()) {
    throw ConfigError("rank " + std::to_string(rank_) + " has no " +
                      std::string(CollKindName(kind)) +
                      " support kernel on port " + std::to_string(port) +
                      " (missing from the ProgramSpec?)");
  }
  if (it->second.kind != kind) {
    throw ConfigError(std::string("port ") + std::to_string(port) +
                      " hosts a " + CollKindName(it->second.kind) +
                      " support kernel, not " + CollKindName(kind));
  }
  if (it->second.type != type) {
    throw ConfigError(std::string("collective on port ") +
                      std::to_string(port) + " was built for " +
                      DataTypeName(it->second.type) + ", opened with " +
                      DataTypeName(type));
  }
  return it->second;
}

CollConfig Context::MakeCollConfig(CollKind kind, int count, DataType type,
                                   int port, int root,
                                   const Communicator& comm,
                                   int credits) const {
  (void)port;
  CollConfig cfg;
  cfg.kind = kind;
  cfg.count = count;
  cfg.type = type;
  cfg.root_comm = root;
  cfg.credits = credits;
  cfg.comm_global = comm.global_ranks();
  return cfg;
}

BcastChannel Context::OpenBcastChannel(int count, DataType type, int port,
                                       int root, const Communicator& comm) {
  const CollPort& cp = FindCollPort(port, CollKind::kBcast, type);
  return BcastChannel(
      MakeCollConfig(CollKind::kBcast, count, type, port, root, comm, 0),
      rank_, *cp.app_in, *cp.app_out);
}

ReduceChannel Context::OpenReduceChannel(int count, DataType type, ReduceOp op,
                                         int port, int root,
                                         const Communicator& comm,
                                         int credits) {
  const CollPort& cp = FindCollPort(port, CollKind::kReduce, type);
  // An in-network reduce bakes its fold function and credit fan tree into
  // the fabric's handler tables; the open must match them.
  if (cp.algo == CollAlgo::kInnet) {
    if (op != cp.innet_op) {
      throw ConfigError(std::string("in-network reduce on port ") +
                        std::to_string(port) + " was built for " +
                        ReduceOpName(cp.innet_op) + ", opened with " +
                        ReduceOpName(op));
    }
    if (comm.GlobalRank(root) != cp.innet_root_global) {
      throw ConfigError(
          "in-network reduce on port " + std::to_string(port) +
          " has its fan tree rooted at global rank " +
          std::to_string(cp.innet_root_global) +
          "; re-target with Cluster::ConfigureInnetHandlers before opening "
          "toward global rank " + std::to_string(comm.GlobalRank(root)));
    }
    if (comm.global_ranks() != cp.innet_comm) {
      throw ConfigError(
          "in-network reduce on port " + std::to_string(port) +
          " opened with a communicator that does not match its configured "
          "handler tables (Cluster::ConfigureInnetHandlers)");
    }
  }
  CollConfig cfg =
      MakeCollConfig(CollKind::kReduce, count, type, port, root, comm, credits);
  cfg.op = op;
  if (cp.algo == CollAlgo::kInnet) {
    cfg.pace_wait = cp.innet_pace_wait;
    cfg.window_cycles = cp.innet_rtt;
  }
  return ReduceChannel(std::move(cfg), rank_, *cp.app_in, *cp.app_out);
}

AllreduceChannel Context::OpenAllreduceChannel(int count, DataType type,
                                               ReduceOp op, int port,
                                               const Communicator& comm,
                                               int credits) {
  const CollPort& cp = FindCollPort(port, CollKind::kAllreduce, type);
  // Rootless at the API level; the kernel's reduce/broadcast tree is rooted
  // at communicator rank 0 as an implementation detail.
  CollConfig cfg = MakeCollConfig(CollKind::kAllreduce, count, type, port,
                                  /*root=*/0, comm, credits);
  cfg.op = op;
  return AllreduceChannel(std::move(cfg), rank_, *cp.app_in, *cp.app_out);
}

ScatterChannel Context::OpenScatterChannel(int count, DataType type, int port,
                                           int root,
                                           const Communicator& comm) {
  const CollPort& cp = FindCollPort(port, CollKind::kScatter, type);
  return ScatterChannel(
      MakeCollConfig(CollKind::kScatter, count, type, port, root, comm, 0),
      rank_, *cp.app_in, *cp.app_out);
}

GatherChannel Context::OpenGatherChannel(int count, DataType type, int port,
                                         int root, const Communicator& comm) {
  const CollPort& cp = FindCollPort(port, CollKind::kGather, type);
  return GatherChannel(
      MakeCollConfig(CollKind::kGather, count, type, port, root, comm, 0),
      rank_, *cp.app_in, *cp.app_out);
}

sim::MemoryBank& Context::memory_bank(int index) {
  if (index < 0 || index >= static_cast<int>(memory_banks_.size())) {
    throw ConfigError("rank " + std::to_string(rank_) +
                      " has no memory bank " + std::to_string(index));
  }
  return *memory_banks_[static_cast<std::size_t>(index)];
}

}  // namespace smi::core
