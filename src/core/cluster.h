#ifndef SMI_CORE_CLUSTER_H
#define SMI_CORE_CLUSTER_H

/// \file cluster.h
/// The host runtime: builds a simulated multi-FPGA cluster from a topology
/// and per-rank program specs, uploads routing tables, launches application
/// kernels, and runs the simulation to completion — the analogue of the
/// paper's generated host header (`SMI_Init` + kernel launch + route
/// upload; §4.5).
///
/// Usage:
///   Cluster cluster(net::Topology::Torus2D(2, 4), spec /*SPMD*/);
///   for (int r = 0; r < 8; ++r)
///     cluster.AddKernel(r, MyKernel(cluster.context(r), args...), "app");
///   const RunResult result = cluster.Run();

#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/context.h"
#include "core/program.h"
#include "core/support.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/engine.h"
#include "transport/fabric.h"

namespace smi::core {

struct ClusterConfig {
  transport::FabricConfig fabric;
  sim::EngineConfig engine;
  net::RoutingScheme routing = net::RoutingScheme::kAuto;
  /// Tie-break seed for the seeded routing schemes (minimal-adaptive,
  /// Valiant); ignored by the others. See net::ComputeRoutes.
  std::uint64_t routing_seed = 0;
  /// Depth of the FIFOs between applications and collective support kernels.
  std::size_t coll_fifo_depth = 16;
};

/// Telemetry documents pulled from a cluster after Run() (see
/// obs/recorder.h). All values are JSON null unless the engine config
/// enabled `collect_counters` / `collect_trace`, so the struct is free to
/// capture unconditionally.
struct RunTelemetry {
  json::Value counters;  ///< per-entity counter document
  json::Value summary;   ///< aggregate totals (small; embeddable in reports)
  json::Value trace;     ///< Chrome trace-event document
  json::Value faults;    ///< fault/reliability report (null without a plan)
  json::Value fidelity;  ///< link-fidelity report (null in cycle mode)
  bool captured() const { return !summary.is_null(); }
};

struct RunResult {
  sim::Cycle cycles = 0;
  double seconds = 0.0;
  double microseconds = 0.0;
  std::uint64_t link_packets = 0;
  /// Coroutine resumes across the run, merged over all scheduler partitions
  /// (bit-identical across the three schedulers; see engine.h).
  std::uint64_t kernel_resumes = 0;
  /// Partitions used by the engine (1 under the sequential schedulers).
  unsigned partitions = 1;
};

class Cluster {
 public:
  /// MPMD: one ProgramSpec per rank.
  Cluster(const net::Topology& topology, std::vector<ProgramSpec> specs,
          ClusterConfig config = {});
  /// SPMD: the same ProgramSpec on every rank.
  Cluster(const net::Topology& topology, const ProgramSpec& spmd_spec,
          ClusterConfig config = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_ranks() const { return num_ranks_; }
  Context& context(int rank);

  /// Attach `count` DRAM banks with the given streaming rate to a rank (see
  /// sim::MemoryBank; 1.0 = 16 float elements per cycle per bank).
  void AddMemoryBanks(int rank, int count, double words_per_cycle);

  /// Register an application kernel on `rank`. Kernels keep the run alive;
  /// the run completes when all of them finish.
  void AddKernel(int rank, sim::Kernel kernel, const std::string& name);

  /// Replace the routing tables (recomputed for a different topology or
  /// rank subset) without rebuilding the fabric.
  void UploadRoutes(const net::RoutingTable& routes);

  /// Run the simulation to completion.
  RunResult Run();

  /// Telemetry documents collected during Run() (see obs/recorder.h). Null
  /// JSON values unless the engine config enabled `collect_counters` /
  /// `collect_trace`.
  json::Value CountersJson() const;
  json::Value CountersSummaryJson() const;
  json::Value TraceJson() const;
  /// Fault/reliability report (null when no fault plan is enabled);
  /// independent of the telemetry switches. See Fabric::FaultsJson.
  json::Value FaultsJson() const;
  /// Link-fidelity report (null when the engine's fidelity mode is kCycle);
  /// independent of the telemetry switches. See Fabric::FidelityJson.
  json::Value FidelityJson() const;
  /// All documents at once — call after Run(), before destruction.
  RunTelemetry CaptureTelemetry() const;

  /// Attach a JSON annotation to the telemetry documents (see
  /// obs::Recorder::Annotate); no-op when telemetry is disabled. Call
  /// before CaptureTelemetry.
  void Annotate(const std::string& key, json::Value value);

  sim::Engine& engine() { return *engine_; }
  transport::Fabric& fabric() { return *fabric_; }
  const net::RoutingTable& routes() const { return routes_; }
  /// True when a seeded scheme's table failed the CDG acyclicity check and
  /// the up*/down* escape table was uploaded instead.
  bool routing_fell_back() const { return routing_fell_back_; }

 private:
  void Build(const net::Topology& topology, std::vector<ProgramSpec> specs,
             const ClusterConfig& config);

  int num_ranks_ = 0;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<transport::Fabric> fabric_;
  net::RoutingTable routes_{1};
  std::vector<Context> contexts_;
  std::vector<bool> is_switch_;
  bool routing_fell_back_ = false;
};

}  // namespace smi::core

#endif  // SMI_CORE_CLUSTER_H
