#ifndef SMI_CORE_CLUSTER_H
#define SMI_CORE_CLUSTER_H

/// \file cluster.h
/// The host runtime: builds a simulated multi-FPGA cluster from a topology
/// and per-rank program specs, uploads routing tables, launches application
/// kernels, and runs the simulation to completion — the analogue of the
/// paper's generated host header (`SMI_Init` + kernel launch + route
/// upload; §4.5).
///
/// Usage:
///   Cluster cluster(net::Topology::Torus2D(2, 4), spec /*SPMD*/);
///   for (int r = 0; r < 8; ++r)
///     cluster.AddKernel(r, MyKernel(cluster.context(r), args...), "app");
///   const RunResult result = cluster.Run();

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/context.h"
#include "core/program.h"
#include "core/support.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/engine.h"
#include "transport/fabric.h"

namespace smi::core {

struct ClusterConfig {
  transport::FabricConfig fabric;
  sim::EngineConfig engine;
  net::RoutingScheme routing = net::RoutingScheme::kAuto;
  /// Tie-break seed for the seeded routing schemes (minimal-adaptive,
  /// Valiant); ignored by the others. See net::ComputeRoutes.
  std::uint64_t routing_seed = 0;
  /// Depth of the FIFOs between applications and collective support kernels.
  std::size_t coll_fifo_depth = 16;
  /// Hold window of the reduce-in-transit combine buffers (cycles a lone
  /// packet waits for a merge partner before forwarding unmodified); used
  /// for the handler tables of in-network Reduce ports (CollAlgo::kInnet).
  /// The default absorbs the residual jitter of the paced contribution
  /// streams (see innet.h "stream pacing"); thanks to the funnel in-degree
  /// caps only tail/misaligned packets ever wait it out.
  int innet_hold_cycles = 16;
};

/// Telemetry documents pulled from a cluster after Run() (see
/// obs/recorder.h). All values are JSON null unless the engine config
/// enabled `collect_counters` / `collect_trace`, so the struct is free to
/// capture unconditionally.
struct RunTelemetry {
  json::Value counters;  ///< per-entity counter document
  json::Value summary;   ///< aggregate totals (small; embeddable in reports)
  json::Value trace;     ///< Chrome trace-event document
  json::Value faults;    ///< fault/reliability report (null without a plan)
  json::Value fidelity;  ///< link-fidelity report (null in cycle mode)
  bool captured() const { return !summary.is_null(); }
};

struct RunResult {
  sim::Cycle cycles = 0;
  double seconds = 0.0;
  double microseconds = 0.0;
  std::uint64_t link_packets = 0;
  /// Coroutine resumes across the run, merged over all scheduler partitions
  /// (bit-identical across the three schedulers; see engine.h).
  std::uint64_t kernel_resumes = 0;
  /// Partitions used by the engine (1 under the sequential schedulers).
  unsigned partitions = 1;
};

class Cluster {
 public:
  /// MPMD: one ProgramSpec per rank.
  Cluster(const net::Topology& topology, std::vector<ProgramSpec> specs,
          ClusterConfig config = {});
  /// SPMD: the same ProgramSpec on every rank.
  Cluster(const net::Topology& topology, const ProgramSpec& spmd_spec,
          ClusterConfig config = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_ranks() const { return num_ranks_; }
  Context& context(int rank);

  /// Attach `count` DRAM banks with the given streaming rate to a rank (see
  /// sim::MemoryBank; 1.0 = 16 float elements per cycle per bank).
  void AddMemoryBanks(int rank, int count, double words_per_cycle);

  /// Register an application kernel on `rank`. Kernels keep the run alive;
  /// the run completes when all of them finish.
  void AddKernel(int rank, sim::Kernel kernel, const std::string& name);

  /// Replace the routing tables (recomputed for a different topology or
  /// rank subset) without rebuilding the fabric.
  void UploadRoutes(const net::RoutingTable& routes);

  /// Re-target an in-network Reduce port (CollAlgo::kInnet): rebuild and
  /// re-upload the handler tables for `root_global` (and, when non-empty,
  /// a new communicator membership). Build() installs every innet port with
  /// root = its first participating rank and the participants as the
  /// communicator; call this before Run() to reduce toward a different
  /// root. Channel opens on the port are validated against this
  /// configuration.
  void ConfigureInnetHandlers(int port, int root_global,
                              std::vector<int> comm_global = {});

  /// Run the simulation to completion.
  RunResult Run();

  /// Telemetry documents collected during Run() (see obs/recorder.h). Null
  /// JSON values unless the engine config enabled `collect_counters` /
  /// `collect_trace`.
  json::Value CountersJson() const;
  json::Value CountersSummaryJson() const;
  json::Value TraceJson() const;
  /// Fault/reliability report (null when no fault plan is enabled);
  /// independent of the telemetry switches. See Fabric::FaultsJson.
  json::Value FaultsJson() const;
  /// Link-fidelity report (null when the engine's fidelity mode is kCycle);
  /// independent of the telemetry switches. See Fabric::FidelityJson.
  json::Value FidelityJson() const;
  /// All documents at once — call after Run(), before destruction.
  RunTelemetry CaptureTelemetry() const;

  /// Attach a JSON annotation to the telemetry documents (see
  /// obs::Recorder::Annotate); no-op when telemetry is disabled. Call
  /// before CaptureTelemetry.
  void Annotate(const std::string& key, json::Value value);

  sim::Engine& engine() { return *engine_; }
  transport::Fabric& fabric() { return *fabric_; }
  const net::RoutingTable& routes() const { return routes_; }
  /// True when a seeded scheme's table failed the CDG acyclicity check and
  /// the up*/down* escape table was uploaded instead.
  bool routing_fell_back() const { return routing_fell_back_; }

 private:
  /// One in-network Reduce port: the build-time (op, type) pair baked into
  /// its combine handlers and the current root/communicator of its fan tree.
  struct InnetPort {
    ReduceOp op = ReduceOp::kAdd;
    DataType type = DataType::kInt;
    int root_global = 0;
    std::vector<int> comm_global;
  };

  void Build(const net::Topology& topology, std::vector<ProgramSpec> specs,
             const ClusterConfig& config);
  /// Rebuild the per-rank handler tables from `innet_ports_`, upload them,
  /// and refresh the contexts' open-time validation data.
  void UploadInnetHandlers();

  /// Everything an innet port's handler tables and pacing need from the
  /// routing tables (all vectors indexed by global rank; see innet.h).
  struct InnetRoutePlan {
    /// Funnel in-degree: contributions routing through the rank's network
    /// egress toward the root (caps the combine handlers' max_contribs).
    std::vector<int> funnel;
    /// Grant fan tree children: the rank's fan-out targets, derived as the
    /// reverse of the data routing tree so fan distance == data distance.
    std::vector<std::vector<int>> fan_children;
    /// Per-rank stream-pacing delay in cycles (innet.h "stream pacing").
    std::vector<int> pace_wait;
    /// Grant round-trip of the communicator: 2 * max distance * hop
    /// latency; the root's bandwidth-delay-product window covers it.
    int rtt = 0;
  };
  InnetRoutePlan PlanInnetRoutes(const InnetPort& p) const;

  int num_ranks_ = 0;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<transport::Fabric> fabric_;
  net::Topology topology_{1, 1};  ///< replaced in Build
  net::RoutingTable routes_{1};
  std::vector<Context> contexts_;
  std::vector<bool> is_switch_;
  bool routing_fell_back_ = false;
  std::map<int, InnetPort> innet_ports_;  // port -> configuration
  int innet_hold_cycles_ = 16;
  /// Per-hop latency used for the pacing computation: the fabric's serial
  /// link latency plus the CK forwarding overhead (see PlanInnetRoutes).
  sim::Cycle innet_hop_latency_ = 0;
};

}  // namespace smi::core

#endif  // SMI_CORE_CLUSTER_H
