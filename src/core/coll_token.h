#ifndef SMI_CORE_COLL_TOKEN_H
#define SMI_CORE_COLL_TOKEN_H

/// \file coll_token.h
/// Tokens exchanged between application kernels and collective support
/// kernels over on-chip FIFOs. A collective channel open pushes a config
/// token carrying the runtime parameters (count, datatype, root, op,
/// communicator membership); data elements follow as element tokens. This
/// mirrors how the generated SMI hardware parameterizes the support kernels
/// at runtime so root and non-root behaviour can be selected dynamically
/// (§4.4: "both the root and non-root behavior is instantiated at every
/// rank").

#include <variant>
#include <vector>

#include "core/types.h"
#include "sim/fifo.h"

namespace smi::core {

enum class CollKind : std::uint8_t {
  kBcast,
  kReduce,
  kScatter,
  kGather,
  /// Reduce-then-broadcast composition on a single collective port: every
  /// rank contributes `count` elements and every rank receives the reduced
  /// results (rootless, like MPI_Allreduce).
  kAllreduce,
};

const char* CollKindName(CollKind k);

/// Which implementation a collective's support kernel uses: the simple
/// linear scheme of the reference implementation, the binomial-tree
/// variant (the §4.4 extension; Bcast and Reduce only), or the in-network
/// variant (Reduce only): contributions stream flat to the root and are
/// folded *inside the network* by the reduce-in-transit handlers of
/// transport/handler.h, with credit grants multicast down a fan-out tree.
/// Baked into the fabric like everything else about the support kernels.
enum class CollAlgo : std::uint8_t { kLinear, kTree, kInnet };

struct CollConfig {
  CollKind kind = CollKind::kBcast;
  int count = 0;                 ///< elements per rank (message length)
  DataType type = DataType::kInt;
  int root_comm = 0;             ///< root as a communicator rank
  ReduceOp op = ReduceOp::kAdd;  ///< reduce only
  int credits = 64;              ///< reduce flow-control tile size C (§4.4)
  /// In-network Reduce only: cycles this (non-root) rank waits after each
  /// tile grant before streaming the tile, chosen by the Cluster so every
  /// contributor's packet for a given base reaches each funnel rank at the
  /// same time and the reduce-in-transit combiners actually merge them (see
  /// innet.h, "stream pacing").
  int pace_wait = 0;
  /// In-network Reduce only: the communicator's grant round-trip time in
  /// cycles (grant fan-out descent plus contribution travel back). The root
  /// sizes its accumulation window to cover it — the classic
  /// bandwidth-delay product — so tile grants stay ahead of the farthest
  /// rank and the round-trip hides behind the streaming.
  int window_cycles = 0;
  std::vector<int> comm_global;  ///< communicator members (global ranks)
};

using CollToken = std::variant<CollConfig, Element>;
using TokenFifo = sim::Fifo<CollToken>;

}  // namespace smi::core

#endif  // SMI_CORE_COLL_TOKEN_H
