#include "core/program.h"

#include <set>

#include "common/error.h"

namespace smi::core {

const char* OpKindName(OpSpec::Kind kind) {
  switch (kind) {
    case OpSpec::Kind::kSend: return "send";
    case OpSpec::Kind::kRecv: return "recv";
    case OpSpec::Kind::kBcast: return "bcast";
    case OpSpec::Kind::kReduce: return "reduce";
    case OpSpec::Kind::kScatter: return "scatter";
    case OpSpec::Kind::kGather: return "gather";
    case OpSpec::Kind::kAllreduce: return "allreduce";
  }
  return "?";
}

namespace {

OpSpec::Kind KindFromName(const std::string& name) {
  if (name == "send") return OpSpec::Kind::kSend;
  if (name == "recv") return OpSpec::Kind::kRecv;
  if (name == "bcast") return OpSpec::Kind::kBcast;
  if (name == "reduce") return OpSpec::Kind::kReduce;
  if (name == "scatter") return OpSpec::Kind::kScatter;
  if (name == "gather") return OpSpec::Kind::kGather;
  if (name == "allreduce") return OpSpec::Kind::kAllreduce;
  throw ParseError("unknown op kind: " + name);
}

DataType TypeFromName(const std::string& name) {
  if (name == "SMI_CHAR") return DataType::kChar;
  if (name == "SMI_SHORT") return DataType::kShort;
  if (name == "SMI_INT") return DataType::kInt;
  if (name == "SMI_FLOAT") return DataType::kFloat;
  if (name == "SMI_DOUBLE") return DataType::kDouble;
  throw ParseError("unknown datatype: " + name);
}

ReduceOp ReduceOpFromName(const std::string& name) {
  if (name == "SMI_ADD") return ReduceOp::kAdd;
  if (name == "SMI_MAX") return ReduceOp::kMax;
  if (name == "SMI_MIN") return ReduceOp::kMin;
  throw ParseError("unknown reduce op: " + name);
}

const char* AlgoName(CollAlgo algo) {
  switch (algo) {
    case CollAlgo::kLinear: return "linear";
    case CollAlgo::kTree: return "tree";
    case CollAlgo::kInnet: return "innet";
  }
  return "?";
}

}  // namespace

ProgramSpec::ProgramSpec(std::vector<OpSpec> ops) {
  for (const OpSpec& op : ops) Add(op);
}

void ProgramSpec::Validate(const OpSpec& op) const {
  if (op.port < 0) throw ConfigError("negative SMI port");
  if (op.algo == CollAlgo::kInnet && op.kind != OpSpec::Kind::kReduce) {
    throw ConfigError(std::string("the in-network algo exists only for "
                                  "reduce, not ") + OpKindName(op.kind));
  }
  for (const OpSpec& existing : ops_) {
    if (existing.port != op.port) continue;
    const bool clash =
        existing.is_collective() || op.is_collective() ||
        existing.kind == op.kind;
    if (clash) {
      throw ConfigError(std::string("port ") + std::to_string(op.port) +
                        " already used by a " + OpKindName(existing.kind) +
                        " operation; cannot add " + OpKindName(op.kind));
    }
  }
}

ProgramSpec& ProgramSpec::Add(OpSpec op) {
  Validate(op);
  ops_.push_back(op);
  return *this;
}

std::vector<int> ProgramSpec::SendPorts() const {
  std::set<int> ports;
  for (const OpSpec& op : ops_) {
    if (op.kind == OpSpec::Kind::kRecv) continue;
    ports.insert(op.port);  // sends and collectives
  }
  return {ports.begin(), ports.end()};
}

std::vector<int> ProgramSpec::RecvPorts() const {
  std::set<int> ports;
  for (const OpSpec& op : ops_) {
    if (op.kind == OpSpec::Kind::kSend) continue;
    ports.insert(op.port);
  }
  return {ports.begin(), ports.end()};
}

std::vector<OpSpec> ProgramSpec::CollectiveOps() const {
  std::vector<OpSpec> out;
  for (const OpSpec& op : ops_) {
    if (op.is_collective()) out.push_back(op);
  }
  return out;
}

json::Value ProgramSpec::ToJson() const {
  json::Array ops;
  for (const OpSpec& op : ops_) {
    json::Object o;
    o["kind"] = json::Value(OpKindName(op.kind));
    o["port"] = json::Value(op.port);
    o["type"] = json::Value(DataTypeName(op.type));
    if (op.is_collective()) {
      o["algo"] = json::Value(AlgoName(op.algo));
      if (op.kind == OpSpec::Kind::kReduce ||
          op.kind == OpSpec::Kind::kAllreduce) {
        o["reduce_op"] = json::Value(ReduceOpName(op.reduce_op));
      }
    }
    ops.push_back(json::Value(std::move(o)));
  }
  json::Object root;
  root["ops"] = json::Value(std::move(ops));
  return json::Value(std::move(root));
}

ProgramSpec ProgramSpec::FromJson(const json::Value& v) {
  ProgramSpec spec;
  for (const json::Value& o : v.at("ops").as_array()) {
    OpSpec op;
    op.kind = KindFromName(o.at("kind").as_string());
    op.port = static_cast<int>(o.at("port").as_int());
    op.type = TypeFromName(o.at("type").as_string());
    const std::string algo = o.get_string("algo", "linear");
    if (algo == "tree") {
      op.algo = CollAlgo::kTree;
    } else if (algo == "innet") {
      op.algo = CollAlgo::kInnet;
    } else if (algo != "linear") {
      throw ParseError("unknown collective algo: " + algo);
    }
    op.reduce_op = ReduceOpFromName(o.get_string("reduce_op", "SMI_ADD"));
    spec.Add(op);
  }
  return spec;
}

}  // namespace smi::core
