#include <algorithm>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/coll_tree.h"
#include "core/innet.h"

/// \file support_innet.cpp
/// The in-network Reduce support kernel (CollAlgo::kInnet) and the handler
/// plumbing it needs — see innet.h for the protocol overview.
///
/// Flow control: the root grants credit tiles exactly like the linear/tree
/// Reduce, but each grant is one self-addressed credit packet multicast down
/// the CKR fan-out tree instead of n-1 unicast sends. A final credit after
/// the last element doubles as a close barrier: a non-root leaves the open
/// only once the root has folded every contribution, so packets of
/// successive opens can never coexist in the network (and thus never meet in
/// a combine buffer; the envelope epoch is a second, independent guard).

namespace smi::core {
namespace {

using net::OpType;
using net::Packet;
using sim::Cycle;
using sim::Kernel;
using sim::NextCycle;
using sim::fifo_pop;
using sim::fifo_push;
using transport::InnetEnvelope;

CollConfig GetConfig(CollToken&& tok, const char* kernel) {
  if (!std::holds_alternative<CollConfig>(tok)) {
    throw ConfigError(std::string(kernel) +
                      ": expected a channel-open config token");
  }
  return std::get<CollConfig>(std::move(tok));
}

Element GetElement(CollToken&& tok, const char* kernel) {
  if (!std::holds_alternative<Element>(tok)) {
    throw ConfigError(std::string(kernel) +
                      ": expected a data element, got a config token");
  }
  return std::get<Element>(tok);
}

int MyCommRank(const CollConfig& cfg, int my_global, const char* kernel) {
  for (std::size_t i = 0; i < cfg.comm_global.size(); ++i) {
    if (cfg.comm_global[i] == my_global) return static_cast<int>(i);
  }
  throw ConfigError(std::string(kernel) + ": rank not in communicator");
}

Packet MakeSync(const SupportCtx& ctx, int dst_global, OpType op) {
  Packet p;
  p.hdr.src = static_cast<std::uint16_t>(ctx.my_global);
  p.hdr.dst = static_cast<std::uint16_t>(dst_global);
  p.hdr.port = static_cast<std::uint8_t>(ctx.port);
  p.hdr.op = op;
  return p;
}

/// Element accessors offset past the 8-byte envelope.
void PackInnetElement(Packet& pkt, int index, const Element& e,
                      std::size_t size) {
  pkt.StoreBytes(InnetEnvelope::kBytes + static_cast<std::size_t>(index) * size,
                 e.bytes.data(), size);
}

Element UnpackInnetElement(const Packet& pkt, int index, std::size_t size) {
  Element e;
  pkt.LoadBytes(InnetEnvelope::kBytes + static_cast<std::size_t>(index) * size,
                e.bytes.data(), size);
  return e;
}

/// Root-relative rank -> global rank.
int RelToGlobal(const CollConfig& cfg, int rel) {
  const int n = static_cast<int>(cfg.comm_global.size());
  const int comm_rank = (rel + cfg.root_comm) % n;
  return cfg.comm_global[static_cast<std::size_t>(comm_rank)];
}

/// The per-(op, type) packet-fold function injected into the transport. A
/// template over both enums so every instantiation is a captureless function
/// the handler table can hold as a plain pointer.
template <ReduceOp Op, DataType T>
void CombineInnetPackets(Packet& acc, const Packet& in) {
  constexpr std::size_t esz = SizeOf(T);
  for (int e = 0; e < acc.hdr.count; ++e) {
    PackInnetElement(acc, e,
                     ApplyReduceOp(Op, T, UnpackInnetElement(acc, e, esz),
                                   UnpackInnetElement(in, e, esz)),
                     esz);
  }
}

template <ReduceOp Op>
transport::HandlerEntry::CombineFn CombinerForType(DataType type) {
  switch (type) {
    case DataType::kChar: return &CombineInnetPackets<Op, DataType::kChar>;
    case DataType::kShort: return &CombineInnetPackets<Op, DataType::kShort>;
    case DataType::kInt: return &CombineInnetPackets<Op, DataType::kInt>;
    case DataType::kFloat: return &CombineInnetPackets<Op, DataType::kFloat>;
    case DataType::kDouble: return &CombineInnetPackets<Op, DataType::kDouble>;
  }
  throw ConfigError("MakeInnetCombiner: unknown datatype");
}

}  // namespace

transport::HandlerEntry::CombineFn MakeInnetCombiner(ReduceOp op,
                                                     DataType type) {
  switch (op) {
    case ReduceOp::kAdd: return CombinerForType<ReduceOp::kAdd>(type);
    case ReduceOp::kMax: return CombinerForType<ReduceOp::kMax>(type);
    case ReduceOp::kMin: return CombinerForType<ReduceOp::kMin>(type);
  }
  throw ConfigError("MakeInnetCombiner: unknown reduce op");
}

void AppendInnetHandlers(std::vector<transport::HandlerTable>& tables,
                         int port, ReduceOp op, DataType type, int root_global,
                         const std::vector<int>& comm_global, int hold_cycles,
                         const std::vector<int>& funnel_contribs,
                         const std::vector<std::vector<int>>& fan_children) {
  const int n = static_cast<int>(comm_global.size());
  if (n < 2) return;  // nothing moves through the network
  int root_comm = -1;
  for (std::size_t i = 0; i < comm_global.size(); ++i) {
    if (comm_global[i] == root_global) root_comm = static_cast<int>(i);
  }
  if (root_comm < 0) {
    throw ConfigError("AppendInnetHandlers: root rank " +
                      std::to_string(root_global) + " not in communicator");
  }

  // Reduce-in-transit combining on every rank — transit hops (including
  // forwarding-only switches) are where contribution streams funnel. The
  // per-rank max_contribs is the rank's funnel in-degree (see innet.h): a
  // packet that has absorbed every stream converging at this egress departs
  // at once rather than idling out the hold window.
  transport::HandlerEntry combine;
  combine.cls = transport::HandlerClass::kReduceCombine;
  combine.port = port;
  combine.op = OpType::kData;
  combine.combine = MakeInnetCombiner(op, type);
  combine.hold_cycles = hold_cycles;
  for (std::size_t g = 0; g < tables.size(); ++g) {
    combine.max_contribs =
        g < funnel_contribs.size() ? std::max(1, funnel_contribs[g]) : n - 1;
    tables[g].Add(combine);
  }

  // Credit fan-out: one entry per non-leaf of the grant fan tree, so the
  // root's one self-addressed grant reaches all n-1 ranks. The Cluster
  // passes a routing-derived tree (fan distance == data distance; see
  // innet.h "stream pacing"); without it, fall back to a binomial tree over
  // the communicator.
  if (!fan_children.empty()) {
    for (std::size_t g = 0; g < tables.size(); ++g) {
      if (g >= fan_children.size() || fan_children[g].empty()) continue;
      transport::HandlerEntry fan;
      fan.cls = transport::HandlerClass::kFanOut;
      fan.port = port;
      fan.op = OpType::kCredit;
      fan.fan_dsts = fan_children[g];
      tables[g].Add(std::move(fan));
    }
    return;
  }
  for (int rel = 0; rel < n; ++rel) {
    const std::vector<int> children = BinomialChildren(rel, n);
    if (children.empty()) continue;
    transport::HandlerEntry fan;
    fan.cls = transport::HandlerClass::kFanOut;
    fan.port = port;
    fan.op = OpType::kCredit;
    for (const int child : children) {
      fan.fan_dsts.push_back(
          comm_global[static_cast<std::size_t>((child + root_comm) % n)]);
    }
    const int g = comm_global[static_cast<std::size_t>((rel + root_comm) % n)];
    tables[static_cast<std::size_t>(g)].Add(std::move(fan));
  }
}

// ---------------------------------------------------------------------------
// The support kernel. Root: fold local + network contributions in a C-deep
// window, count contributions per element (the network may have merged the
// streams arbitrarily), emit on completion, multicast tile grants. Non-root:
// stream envelope packets straight to the root inside the granted window;
// the chunk boundaries are a pure function of (count, element size, C) so
// every rank's packet for a given base covers the same element range.
// ---------------------------------------------------------------------------
Kernel InnetReduceSupportKernel(SupportCtx ctx) {
  std::uint16_t epoch = 0;
  for (;;) {
    const CollConfig cfg =
        GetConfig(co_await fifo_pop(*ctx.app_in), "InnetReduceSupport");
    NotifyCollectiveSyncPoint(ctx);  // channel open
    const std::uint16_t my_epoch = epoch++;
    const int n = static_cast<int>(cfg.comm_global.size());
    const int me = MyCommRank(cfg, ctx.my_global, "InnetReduceSupport");
    const int rel = (me - cfg.root_comm + n) % n;
    const std::size_t esz = SizeOf(cfg.type);
    const int epp = static_cast<int>(InnetEnvelope::ElementsPerPacket(esz));
    const int C = std::max(1, cfg.credits);
    if (cfg.count == 0) continue;
    const int tiles = (cfg.count + C - 1) / C;

    if (rel == 0) {
      // ---- root ----
      // The accumulation window covers the grant round-trip (fan-tree
      // descent + pacing + contribution travel, ~2*D*L_hop cycles) plus the
      // tile currently emitting — the bandwidth-delay product — so grants
      // stay far enough ahead of even the farthest rank that the round-trip
      // hides behind the streaming instead of stalling tile boundaries.
      const int win_tiles =
          tiles > 1 ? std::min(tiles, 2 + cfg.window_cycles / C) : 1;
      const int win = win_tiles * C;
      std::vector<Element> accum(static_cast<std::size_t>(win),
                                 ReduceIdentity(cfg.op, cfg.type));
      std::vector<int> contrib(static_cast<std::size_t>(win), 0);
      int local_next = 0;
      int emitted = 0;
      int granted = 1;          // tiles the non-roots may send
      int credits_to_send = 0;  // pending self-addressed grant multicasts
      while (emitted < cfg.count) {
        const Cycle now = *ctx.now;
        // (0) Widen the granted window whenever the accumulator has room
        // for a whole further tile (at most one grant per cycle; the first
        // fires immediately, pipelining tile 1 behind tile 0).
        if (granted < tiles && (granted + 1) * C <= emitted + win) {
          ++granted;
          if (n > 1) ++credits_to_send;
        }
        // (1) Emit the next completed element to the application.
        const std::size_t eslot = static_cast<std::size_t>(emitted % win);
        if (contrib[eslot] == n && ctx.app_out->CanPush(now)) {
          ctx.app_out->Push(CollToken(accum[eslot]), now);
          accum[eslot] = ReduceIdentity(cfg.op, cfg.type);
          contrib[eslot] = 0;
          ++emitted;
        }
        // (2) Fold one local element within the window.
        if (local_next < cfg.count && local_next < emitted + win &&
            ctx.app_in->CanPop(now)) {
          const Element e =
              GetElement(ctx.app_in->Pop(now), "InnetReduceSupport");
          const std::size_t slot = static_cast<std::size_t>(local_next % win);
          accum[slot] = ApplyReduceOp(cfg.op, cfg.type, accum[slot], e);
          ++contrib[slot];
          ++local_next;
        }
        // (3) Fold one incoming envelope packet.
        if (ctx.net_in->CanPop(now)) {
          const Packet p = ctx.net_in->Pop(now);
          if (p.hdr.op == OpType::kCredit) {
            // The local CKR delivers the root's own grant multicast back
            // here (the fan-out replicates it to the children): ignore.
          } else if (p.hdr.op == OpType::kData) {
            if (InnetEnvelope::Epoch(p) != my_epoch) {
              // The close barrier makes cross-open data unreachable; seeing
              // it means the protocol (or a handler) is broken.
              throw ConfigError(
                  "InnetReduceSupport: contribution from another channel "
                  "open: " + p.DebugString());
            }
            const int base = static_cast<int>(InnetEnvelope::Base(p));
            const int pc = InnetEnvelope::Contribs(p);
            for (int e = 0; e < p.hdr.count; ++e) {
              const int idx = base + e;
              if (idx >= cfg.count || idx >= granted * C) {
                throw ConfigError(
                    "InnetReduceSupport: contribution outside the granted "
                    "window: " + p.DebugString());
              }
              const std::size_t slot = static_cast<std::size_t>(idx % win);
              if (contrib[slot] + pc > n) {
                throw ConfigError(
                    "InnetReduceSupport: element folded more than once "
                    "per rank: " + p.DebugString());
              }
              accum[slot] = ApplyReduceOp(cfg.op, cfg.type, accum[slot],
                                          UnpackInnetElement(p, e, esz));
              contrib[slot] += pc;
            }
          } else {
            throw ConfigError("InnetReduceSupport: unexpected packet: " +
                              p.DebugString());
          }
        }
        // (4) Send one pending grant (the fan tree does the distribution).
        if (credits_to_send > 0 && ctx.net_out->CanPush(now)) {
          ctx.net_out->Push(MakeSync(ctx, ctx.my_global, OpType::kCredit),
                            now);
          --credits_to_send;
        }
        co_await NextCycle{};
      }
      // Close barrier: one final credit multicast releases the non-roots
      // into their next open only after every contribution arrived here —
      // no packet of this open can still sit in a combine buffer when the
      // next open's traffic enters the network.
      if (n > 1) {
        co_await fifo_push(*ctx.net_out,
                           MakeSync(ctx, ctx.my_global, OpType::kCredit));
      }
    } else {
      // ---- non-root ----
      const int root_global = RelToGlobal(cfg, 0);
      int done = 0;      // elements sent
      int fill = 0;      // elements staged in `out`
      int credits = 0;   // grants + the final close-barrier credit
      bool flush_ready = false;
      Packet out = MakeSync(ctx, root_global, OpType::kData);
      // Per-tile pacing gates (see innet.h "stream pacing"): tile t may
      // start streaming pace_wait cycles after its grant arrived, so the
      // contribution streams of all ranks meet at the funnels. Tile 0 is
      // gated off the channel open; a not-yet-granted tile has gate 0 and
      // is held back by the credit window instead.
      std::vector<Cycle> gates(static_cast<std::size_t>(tiles), 0);
      gates[0] = *ctx.now + static_cast<Cycle>(cfg.pace_wait);
      // The effective schedule of the tile being staged. Tile t starts at
      // max(its gate, previous tile's start + C): both terms are aligned
      // across ranks, so the max re-pins the aligned schedule at EVERY tile
      // boundary even when the root's deep window delivered the grant long
      // ago — without it the streams free-run between grants and drift
      // apart faster than the combine hold window.
      int cur_tile = 0;
      Cycle sched = gates[0];
      while (done < cfg.count || credits < tiles) {
        const Cycle now = *ctx.now;
        // Absorb one credit per cycle.
        if (ctx.net_in->CanPop(now)) {
          const Packet p = ctx.net_in->Pop(now);
          if (p.hdr.op != OpType::kCredit) {
            throw ConfigError("InnetReduceSupport: unexpected packet at a "
                              "non-root: " + p.DebugString());
          }
          ++credits;
          // Gate the tile this credit granted (the close barrier re-stamps
          // the last tile's gate, which is long past by then: harmless).
          gates[static_cast<std::size_t>(std::min(credits, tiles - 1))] =
              now + static_cast<Cycle>(cfg.pace_wait);
        }
        // Flush before staging so a full envelope departs in the same cycle
        // the next element is staged: the stream sustains one element per
        // cycle, matching the root's emission rate.
        if (flush_ready && ctx.net_out->CanPush(now)) {
          out.hdr.count = static_cast<std::uint8_t>(fill);
          InnetEnvelope::SetBase(out, static_cast<std::uint32_t>(done));
          InnetEnvelope::SetContribs(out, 1);
          InnetEnvelope::SetEpoch(out, my_epoch);
          ctx.net_out->Push(out, now);
          done += fill;
          fill = 0;
          flush_ready = false;
        }
        // Stage one local element inside the granted window, past the
        // tile's pacing gate. The final (close-barrier) credit never widens
        // the window.
        const int granted = 1 + std::min(credits, tiles - 1);
        const int idx = done + fill;
        if (idx < granted * C && idx / C != cur_tile) {
          // Entering a granted tile: its gate was stamped when its credit
          // arrived, so the schedule advance below sees the real gate.
          cur_tile = idx / C;
          sched = std::max(gates[static_cast<std::size_t>(cur_tile)],
                           sched + static_cast<Cycle>(C));
        }
        if (!flush_ready && idx < cfg.count && idx < granted * C &&
            now >= sched && ctx.app_in->CanPop(now)) {
          PackInnetElement(out, fill,
                           GetElement(ctx.app_in->Pop(now),
                                      "InnetReduceSupport"),
                           esz);
          ++fill;
          // Identical chunking on every rank: flush on a full envelope, at
          // a tile boundary, or at message end.
          flush_ready = fill == epp || (idx + 1) % C == 0 ||
                        idx + 1 == cfg.count;
        }
        co_await NextCycle{};
      }
    }
    NotifyCollectiveSyncPoint(ctx);  // channel close
  }
}

}  // namespace smi::core
