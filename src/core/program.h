#ifndef SMI_CORE_PROGRAM_H
#define SMI_CORE_PROGRAM_H

/// \file program.h
/// Static description of the SMI operations a rank's kernels use.
///
/// In the paper's workflow, a Clang-based metadata extractor parses the
/// device code and hands the list of SMI operations (ports, datatypes,
/// collective kinds) to the code generator, which instantiates exactly the
/// CKS/CKR modules, endpoint FIFOs and support kernels those operations
/// need. `ProgramSpec` is that metadata, declared explicitly; the codegen
/// planner (`codegen/planner.h`) turns it into a fabric plan.

#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/coll_token.h"
#include "core/types.h"

namespace smi::core {

struct OpSpec {
  enum class Kind : std::uint8_t {
    kSend,
    kRecv,
    kBcast,
    kReduce,
    kScatter,
    kGather,
    kAllreduce,
  };

  Kind kind = Kind::kSend;
  int port = 0;
  DataType type = DataType::kInt;
  CollAlgo algo = CollAlgo::kLinear;
  /// Reduce/Allreduce only. For the in-network algo this is *build-time*
  /// information: the reduce-in-transit handlers bake the fold function per
  /// (op, type) into the fabric, and opening the channel with a different op
  /// is rejected (for linear/tree it remains a runtime parameter and this
  /// field is just the default).
  ReduceOp reduce_op = ReduceOp::kAdd;

  static OpSpec Send(int port, DataType type) {
    return OpSpec{Kind::kSend, port, type, CollAlgo::kLinear};
  }
  static OpSpec Recv(int port, DataType type) {
    return OpSpec{Kind::kRecv, port, type, CollAlgo::kLinear};
  }
  static OpSpec Bcast(int port, DataType type,
                      CollAlgo algo = CollAlgo::kLinear) {
    return OpSpec{Kind::kBcast, port, type, algo};
  }
  static OpSpec Reduce(int port, DataType type,
                       CollAlgo algo = CollAlgo::kLinear,
                       ReduceOp reduce_op = ReduceOp::kAdd) {
    return OpSpec{Kind::kReduce, port, type, algo, reduce_op};
  }
  static OpSpec Scatter(int port, DataType type) {
    return OpSpec{Kind::kScatter, port, type, CollAlgo::kLinear};
  }
  static OpSpec Gather(int port, DataType type) {
    return OpSpec{Kind::kGather, port, type, CollAlgo::kLinear};
  }
  static OpSpec Allreduce(int port, DataType type,
                          CollAlgo algo = CollAlgo::kLinear) {
    return OpSpec{Kind::kAllreduce, port, type, algo};
  }

  bool is_collective() const { return kind != Kind::kSend && kind != Kind::kRecv; }
  std::optional<CollKind> coll_kind() const {
    switch (kind) {
      case Kind::kBcast: return CollKind::kBcast;
      case Kind::kReduce: return CollKind::kReduce;
      case Kind::kScatter: return CollKind::kScatter;
      case Kind::kGather: return CollKind::kGather;
      case Kind::kAllreduce: return CollKind::kAllreduce;
      default: return std::nullopt;
    }
  }
};

const char* OpKindName(OpSpec::Kind kind);

/// The set of SMI operations used by one rank's kernels. Validated on
/// construction: a port carries at most one send, one recv, or exactly one
/// collective (whose support kernel owns both directions).
class ProgramSpec {
 public:
  ProgramSpec() = default;
  explicit ProgramSpec(std::vector<OpSpec> ops);

  ProgramSpec& Add(OpSpec op);

  const std::vector<OpSpec>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }

  /// Ports needing a send / recv application endpoint (collectives need
  /// both, for their support kernel).
  std::vector<int> SendPorts() const;
  std::vector<int> RecvPorts() const;
  /// The collective ops, for support kernel instantiation.
  std::vector<OpSpec> CollectiveOps() const;

  /// JSON round trip: the on-disk metadata format consumed by the codegen
  /// tools.
  json::Value ToJson() const;
  static ProgramSpec FromJson(const json::Value& v);

 private:
  void Validate(const OpSpec& op) const;
  std::vector<OpSpec> ops_;
};

}  // namespace smi::core

#endif  // SMI_CORE_PROGRAM_H
