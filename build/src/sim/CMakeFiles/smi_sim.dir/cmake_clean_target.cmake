file(REMOVE_RECURSE
  "libsmi_sim.a"
)
