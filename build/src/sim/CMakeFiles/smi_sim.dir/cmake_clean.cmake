file(REMOVE_RECURSE
  "CMakeFiles/smi_sim.dir/engine.cpp.o"
  "CMakeFiles/smi_sim.dir/engine.cpp.o.d"
  "CMakeFiles/smi_sim.dir/memory.cpp.o"
  "CMakeFiles/smi_sim.dir/memory.cpp.o.d"
  "libsmi_sim.a"
  "libsmi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
