# Empty compiler generated dependencies file for smi_sim.
# This may be replaced when dependencies are built.
