file(REMOVE_RECURSE
  "libsmi_common.a"
)
