# Empty dependencies file for smi_common.
# This may be replaced when dependencies are built.
