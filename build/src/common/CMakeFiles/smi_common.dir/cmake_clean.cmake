file(REMOVE_RECURSE
  "CMakeFiles/smi_common.dir/cli.cpp.o"
  "CMakeFiles/smi_common.dir/cli.cpp.o.d"
  "CMakeFiles/smi_common.dir/json.cpp.o"
  "CMakeFiles/smi_common.dir/json.cpp.o.d"
  "CMakeFiles/smi_common.dir/logging.cpp.o"
  "CMakeFiles/smi_common.dir/logging.cpp.o.d"
  "CMakeFiles/smi_common.dir/stats.cpp.o"
  "CMakeFiles/smi_common.dir/stats.cpp.o.d"
  "CMakeFiles/smi_common.dir/string_util.cpp.o"
  "CMakeFiles/smi_common.dir/string_util.cpp.o.d"
  "libsmi_common.a"
  "libsmi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
