# Empty dependencies file for smi_core.
# This may be replaced when dependencies are built.
