file(REMOVE_RECURSE
  "libsmi_core.a"
)
