
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/smi_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/smi_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/coll_tree.cpp" "src/core/CMakeFiles/smi_core.dir/coll_tree.cpp.o" "gcc" "src/core/CMakeFiles/smi_core.dir/coll_tree.cpp.o.d"
  "/root/repo/src/core/comm.cpp" "src/core/CMakeFiles/smi_core.dir/comm.cpp.o" "gcc" "src/core/CMakeFiles/smi_core.dir/comm.cpp.o.d"
  "/root/repo/src/core/context.cpp" "src/core/CMakeFiles/smi_core.dir/context.cpp.o" "gcc" "src/core/CMakeFiles/smi_core.dir/context.cpp.o.d"
  "/root/repo/src/core/program.cpp" "src/core/CMakeFiles/smi_core.dir/program.cpp.o" "gcc" "src/core/CMakeFiles/smi_core.dir/program.cpp.o.d"
  "/root/repo/src/core/support.cpp" "src/core/CMakeFiles/smi_core.dir/support.cpp.o" "gcc" "src/core/CMakeFiles/smi_core.dir/support.cpp.o.d"
  "/root/repo/src/core/support_tree.cpp" "src/core/CMakeFiles/smi_core.dir/support_tree.cpp.o" "gcc" "src/core/CMakeFiles/smi_core.dir/support_tree.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/smi_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/smi_core.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/smi_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
