file(REMOVE_RECURSE
  "CMakeFiles/smi_core.dir/cluster.cpp.o"
  "CMakeFiles/smi_core.dir/cluster.cpp.o.d"
  "CMakeFiles/smi_core.dir/coll_tree.cpp.o"
  "CMakeFiles/smi_core.dir/coll_tree.cpp.o.d"
  "CMakeFiles/smi_core.dir/comm.cpp.o"
  "CMakeFiles/smi_core.dir/comm.cpp.o.d"
  "CMakeFiles/smi_core.dir/context.cpp.o"
  "CMakeFiles/smi_core.dir/context.cpp.o.d"
  "CMakeFiles/smi_core.dir/program.cpp.o"
  "CMakeFiles/smi_core.dir/program.cpp.o.d"
  "CMakeFiles/smi_core.dir/support.cpp.o"
  "CMakeFiles/smi_core.dir/support.cpp.o.d"
  "CMakeFiles/smi_core.dir/support_tree.cpp.o"
  "CMakeFiles/smi_core.dir/support_tree.cpp.o.d"
  "CMakeFiles/smi_core.dir/types.cpp.o"
  "CMakeFiles/smi_core.dir/types.cpp.o.d"
  "libsmi_core.a"
  "libsmi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
