file(REMOVE_RECURSE
  "CMakeFiles/smi_transport.dir/ckr.cpp.o"
  "CMakeFiles/smi_transport.dir/ckr.cpp.o.d"
  "CMakeFiles/smi_transport.dir/cks.cpp.o"
  "CMakeFiles/smi_transport.dir/cks.cpp.o.d"
  "CMakeFiles/smi_transport.dir/fabric.cpp.o"
  "CMakeFiles/smi_transport.dir/fabric.cpp.o.d"
  "libsmi_transport.a"
  "libsmi_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
