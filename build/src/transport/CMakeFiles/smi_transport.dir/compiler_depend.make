# Empty compiler generated dependencies file for smi_transport.
# This may be replaced when dependencies are built.
