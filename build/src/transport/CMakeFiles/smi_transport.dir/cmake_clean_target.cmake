file(REMOVE_RECURSE
  "libsmi_transport.a"
)
