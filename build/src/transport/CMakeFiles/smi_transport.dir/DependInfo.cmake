
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/ckr.cpp" "src/transport/CMakeFiles/smi_transport.dir/ckr.cpp.o" "gcc" "src/transport/CMakeFiles/smi_transport.dir/ckr.cpp.o.d"
  "/root/repo/src/transport/cks.cpp" "src/transport/CMakeFiles/smi_transport.dir/cks.cpp.o" "gcc" "src/transport/CMakeFiles/smi_transport.dir/cks.cpp.o.d"
  "/root/repo/src/transport/fabric.cpp" "src/transport/CMakeFiles/smi_transport.dir/fabric.cpp.o" "gcc" "src/transport/CMakeFiles/smi_transport.dir/fabric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smi_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
