# Empty compiler generated dependencies file for smi_resources.
# This may be replaced when dependencies are built.
