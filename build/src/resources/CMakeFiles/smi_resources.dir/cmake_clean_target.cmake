file(REMOVE_RECURSE
  "libsmi_resources.a"
)
