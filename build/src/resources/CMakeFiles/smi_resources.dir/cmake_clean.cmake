file(REMOVE_RECURSE
  "CMakeFiles/smi_resources.dir/model.cpp.o"
  "CMakeFiles/smi_resources.dir/model.cpp.o.d"
  "libsmi_resources.a"
  "libsmi_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
