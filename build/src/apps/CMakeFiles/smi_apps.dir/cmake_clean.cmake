file(REMOVE_RECURSE
  "CMakeFiles/smi_apps.dir/gesummv.cpp.o"
  "CMakeFiles/smi_apps.dir/gesummv.cpp.o.d"
  "CMakeFiles/smi_apps.dir/reference.cpp.o"
  "CMakeFiles/smi_apps.dir/reference.cpp.o.d"
  "CMakeFiles/smi_apps.dir/stencil.cpp.o"
  "CMakeFiles/smi_apps.dir/stencil.cpp.o.d"
  "libsmi_apps.a"
  "libsmi_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
