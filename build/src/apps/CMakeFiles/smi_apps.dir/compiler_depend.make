# Empty compiler generated dependencies file for smi_apps.
# This may be replaced when dependencies are built.
