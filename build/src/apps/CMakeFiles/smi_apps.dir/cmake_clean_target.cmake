file(REMOVE_RECURSE
  "libsmi_apps.a"
)
