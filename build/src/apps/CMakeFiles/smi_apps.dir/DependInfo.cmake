
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/gesummv.cpp" "src/apps/CMakeFiles/smi_apps.dir/gesummv.cpp.o" "gcc" "src/apps/CMakeFiles/smi_apps.dir/gesummv.cpp.o.d"
  "/root/repo/src/apps/reference.cpp" "src/apps/CMakeFiles/smi_apps.dir/reference.cpp.o" "gcc" "src/apps/CMakeFiles/smi_apps.dir/reference.cpp.o.d"
  "/root/repo/src/apps/stencil.cpp" "src/apps/CMakeFiles/smi_apps.dir/stencil.cpp.o" "gcc" "src/apps/CMakeFiles/smi_apps.dir/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/smi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/smi_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
