# Empty compiler generated dependencies file for smi_net.
# This may be replaced when dependencies are built.
