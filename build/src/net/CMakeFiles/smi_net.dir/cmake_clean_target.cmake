file(REMOVE_RECURSE
  "libsmi_net.a"
)
