file(REMOVE_RECURSE
  "CMakeFiles/smi_net.dir/packet.cpp.o"
  "CMakeFiles/smi_net.dir/packet.cpp.o.d"
  "CMakeFiles/smi_net.dir/routing.cpp.o"
  "CMakeFiles/smi_net.dir/routing.cpp.o.d"
  "CMakeFiles/smi_net.dir/topology.cpp.o"
  "CMakeFiles/smi_net.dir/topology.cpp.o.d"
  "libsmi_net.a"
  "libsmi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
