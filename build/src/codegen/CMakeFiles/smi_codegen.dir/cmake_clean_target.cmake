file(REMOVE_RECURSE
  "libsmi_codegen.a"
)
