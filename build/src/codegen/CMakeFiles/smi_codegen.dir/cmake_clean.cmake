file(REMOVE_RECURSE
  "CMakeFiles/smi_codegen.dir/planner.cpp.o"
  "CMakeFiles/smi_codegen.dir/planner.cpp.o.d"
  "libsmi_codegen.a"
  "libsmi_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
