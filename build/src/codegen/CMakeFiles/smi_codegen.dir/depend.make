# Empty dependencies file for smi_codegen.
# This may be replaced when dependencies are built.
