# Empty dependencies file for smi_plan_gen.
# This may be replaced when dependencies are built.
