file(REMOVE_RECURSE
  "CMakeFiles/smi_plan_gen.dir/plan_gen_main.cpp.o"
  "CMakeFiles/smi_plan_gen.dir/plan_gen_main.cpp.o.d"
  "smi_plan_gen"
  "smi_plan_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_plan_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
