
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/route_gen_main.cpp" "src/codegen/CMakeFiles/smi_route_gen.dir/route_gen_main.cpp.o" "gcc" "src/codegen/CMakeFiles/smi_route_gen.dir/route_gen_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/smi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
