file(REMOVE_RECURSE
  "CMakeFiles/smi_route_gen.dir/route_gen_main.cpp.o"
  "CMakeFiles/smi_route_gen.dir/route_gen_main.cpp.o.d"
  "smi_route_gen"
  "smi_route_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_route_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
