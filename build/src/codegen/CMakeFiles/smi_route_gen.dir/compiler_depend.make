# Empty compiler generated dependencies file for smi_route_gen.
# This may be replaced when dependencies are built.
