file(REMOVE_RECURSE
  "CMakeFiles/smi_baseline.dir/host_model.cpp.o"
  "CMakeFiles/smi_baseline.dir/host_model.cpp.o.d"
  "libsmi_baseline.a"
  "libsmi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
