file(REMOVE_RECURSE
  "libsmi_baseline.a"
)
