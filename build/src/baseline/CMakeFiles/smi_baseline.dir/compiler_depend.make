# Empty compiler generated dependencies file for smi_baseline.
# This may be replaced when dependencies are built.
