# Empty dependencies file for test_core_p2p.
# This may be replaced when dependencies are built.
