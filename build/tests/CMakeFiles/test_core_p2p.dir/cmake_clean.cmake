file(REMOVE_RECURSE
  "CMakeFiles/test_core_p2p.dir/core/channel_edge_test.cpp.o"
  "CMakeFiles/test_core_p2p.dir/core/channel_edge_test.cpp.o.d"
  "CMakeFiles/test_core_p2p.dir/core/cluster_test.cpp.o"
  "CMakeFiles/test_core_p2p.dir/core/cluster_test.cpp.o.d"
  "CMakeFiles/test_core_p2p.dir/core/integration_stress_test.cpp.o"
  "CMakeFiles/test_core_p2p.dir/core/integration_stress_test.cpp.o.d"
  "CMakeFiles/test_core_p2p.dir/core/p2p_test.cpp.o"
  "CMakeFiles/test_core_p2p.dir/core/p2p_test.cpp.o.d"
  "test_core_p2p"
  "test_core_p2p.pdb"
  "test_core_p2p[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
