# Empty dependencies file for test_core_collective.
# This may be replaced when dependencies are built.
