file(REMOVE_RECURSE
  "CMakeFiles/test_core_collective.dir/core/collective_test.cpp.o"
  "CMakeFiles/test_core_collective.dir/core/collective_test.cpp.o.d"
  "CMakeFiles/test_core_collective.dir/core/comm_test.cpp.o"
  "CMakeFiles/test_core_collective.dir/core/comm_test.cpp.o.d"
  "CMakeFiles/test_core_collective.dir/core/program_test.cpp.o"
  "CMakeFiles/test_core_collective.dir/core/program_test.cpp.o.d"
  "CMakeFiles/test_core_collective.dir/core/tree_collective_test.cpp.o"
  "CMakeFiles/test_core_collective.dir/core/tree_collective_test.cpp.o.d"
  "CMakeFiles/test_core_collective.dir/core/types_test.cpp.o"
  "CMakeFiles/test_core_collective.dir/core/types_test.cpp.o.d"
  "test_core_collective"
  "test_core_collective.pdb"
  "test_core_collective[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
