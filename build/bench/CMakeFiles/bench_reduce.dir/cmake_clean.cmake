file(REMOVE_RECURSE
  "CMakeFiles/bench_reduce.dir/bench_common.cpp.o"
  "CMakeFiles/bench_reduce.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_reduce.dir/bench_reduce.cpp.o"
  "CMakeFiles/bench_reduce.dir/bench_reduce.cpp.o.d"
  "bench_reduce"
  "bench_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
