# Empty dependencies file for bench_reduce.
# This may be replaced when dependencies are built.
