# Empty dependencies file for bench_gesummv.
# This may be replaced when dependencies are built.
