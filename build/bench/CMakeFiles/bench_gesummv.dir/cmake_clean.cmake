file(REMOVE_RECURSE
  "CMakeFiles/bench_gesummv.dir/bench_common.cpp.o"
  "CMakeFiles/bench_gesummv.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_gesummv.dir/bench_gesummv.cpp.o"
  "CMakeFiles/bench_gesummv.dir/bench_gesummv.cpp.o.d"
  "bench_gesummv"
  "bench_gesummv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gesummv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
