# Empty compiler generated dependencies file for bench_stencil_strong.
# This may be replaced when dependencies are built.
