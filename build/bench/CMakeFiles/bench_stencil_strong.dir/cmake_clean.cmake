file(REMOVE_RECURSE
  "CMakeFiles/bench_stencil_strong.dir/bench_common.cpp.o"
  "CMakeFiles/bench_stencil_strong.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_stencil_strong.dir/bench_stencil_strong.cpp.o"
  "CMakeFiles/bench_stencil_strong.dir/bench_stencil_strong.cpp.o.d"
  "bench_stencil_strong"
  "bench_stencil_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stencil_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
