# Empty dependencies file for bench_injection.
# This may be replaced when dependencies are built.
