# Empty compiler generated dependencies file for bench_collective_tree.
# This may be replaced when dependencies are built.
