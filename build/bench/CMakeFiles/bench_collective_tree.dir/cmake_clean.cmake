file(REMOVE_RECURSE
  "CMakeFiles/bench_collective_tree.dir/bench_collective_tree.cpp.o"
  "CMakeFiles/bench_collective_tree.dir/bench_collective_tree.cpp.o.d"
  "CMakeFiles/bench_collective_tree.dir/bench_common.cpp.o"
  "CMakeFiles/bench_collective_tree.dir/bench_common.cpp.o.d"
  "bench_collective_tree"
  "bench_collective_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collective_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
