# Empty dependencies file for bench_fifo_depth.
# This may be replaced when dependencies are built.
