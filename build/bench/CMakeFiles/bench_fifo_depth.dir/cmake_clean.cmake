file(REMOVE_RECURSE
  "CMakeFiles/bench_fifo_depth.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fifo_depth.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fifo_depth.dir/bench_fifo_depth.cpp.o"
  "CMakeFiles/bench_fifo_depth.dir/bench_fifo_depth.cpp.o.d"
  "bench_fifo_depth"
  "bench_fifo_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fifo_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
