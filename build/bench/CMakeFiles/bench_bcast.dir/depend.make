# Empty dependencies file for bench_bcast.
# This may be replaced when dependencies are built.
