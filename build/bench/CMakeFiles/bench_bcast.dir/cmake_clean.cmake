file(REMOVE_RECURSE
  "CMakeFiles/bench_bcast.dir/bench_bcast.cpp.o"
  "CMakeFiles/bench_bcast.dir/bench_bcast.cpp.o.d"
  "CMakeFiles/bench_bcast.dir/bench_common.cpp.o"
  "CMakeFiles/bench_bcast.dir/bench_common.cpp.o.d"
  "bench_bcast"
  "bench_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
