file(REMOVE_RECURSE
  "CMakeFiles/bench_scatter_gather.dir/bench_common.cpp.o"
  "CMakeFiles/bench_scatter_gather.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_scatter_gather.dir/bench_scatter_gather.cpp.o"
  "CMakeFiles/bench_scatter_gather.dir/bench_scatter_gather.cpp.o.d"
  "bench_scatter_gather"
  "bench_scatter_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scatter_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
