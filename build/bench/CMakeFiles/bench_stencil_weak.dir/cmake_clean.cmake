file(REMOVE_RECURSE
  "CMakeFiles/bench_stencil_weak.dir/bench_common.cpp.o"
  "CMakeFiles/bench_stencil_weak.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_stencil_weak.dir/bench_stencil_weak.cpp.o"
  "CMakeFiles/bench_stencil_weak.dir/bench_stencil_weak.cpp.o.d"
  "bench_stencil_weak"
  "bench_stencil_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stencil_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
