# Empty compiler generated dependencies file for bench_stencil_weak.
# This may be replaced when dependencies are built.
