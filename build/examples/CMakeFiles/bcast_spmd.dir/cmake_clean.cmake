file(REMOVE_RECURSE
  "CMakeFiles/bcast_spmd.dir/bcast_spmd.cpp.o"
  "CMakeFiles/bcast_spmd.dir/bcast_spmd.cpp.o.d"
  "bcast_spmd"
  "bcast_spmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcast_spmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
