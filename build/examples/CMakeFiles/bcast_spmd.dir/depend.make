# Empty dependencies file for bcast_spmd.
# This may be replaced when dependencies are built.
