# Empty dependencies file for gesummv.
# This may be replaced when dependencies are built.
