
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/gesummv.cpp" "examples/CMakeFiles/gesummv.dir/gesummv.cpp.o" "gcc" "examples/CMakeFiles/gesummv.dir/gesummv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/smi_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/smi_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/smi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/smi_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/smi_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
