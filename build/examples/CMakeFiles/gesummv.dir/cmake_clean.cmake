file(REMOVE_RECURSE
  "CMakeFiles/gesummv.dir/gesummv.cpp.o"
  "CMakeFiles/gesummv.dir/gesummv.cpp.o.d"
  "gesummv"
  "gesummv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesummv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
