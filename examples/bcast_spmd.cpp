/// \file bcast_spmd.cpp
/// The paper's Listing 2: an SPMD program in which the root rank broadcasts
/// locally produced elements to the other ranks of the communicator, plus a
/// follow-up Reduce that aggregates a value back at the root — both over
/// the paper's 8-FPGA 2x4 torus, with the root chosen at runtime.
///
/// Build & run:  ./build/examples/bcast_spmd

#include <cstdio>

#include "core/smi.h"

namespace {

using namespace smi;

/// void App(int N, int root, SMI_Comm comm, ...) — Listing 2.
sim::Kernel App(core::Context& ctx, int n, int root) {
  // SMI_Open_bcast_channel(N, SMI_FLOAT, 0, root, comm)
  core::BcastChannel chan = ctx.OpenBcastChannel(
      n, core::DataType::kFloat, /*port=*/0, root, ctx.world());
  const int my_rank = ctx.rank();  // SMI_Comm_rank(comm)
  double local_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    float data = 0.0f;
    if (my_rank == root) {
      data = static_cast<float>(i) * 0.5f;  // create interesting data
    }
    co_await chan.Bcast(data);  // SMI_Bcast(&chan, &data)
    local_sum += data;          // ...do something useful with data...
  }

  // Aggregate every rank's local sum back at the root with SMI_Reduce.
  core::ReduceChannel rchan = ctx.OpenReduceChannel(
      1, core::DataType::kFloat, core::ReduceOp::kAdd, /*port=*/1, root,
      ctx.world());
  float total = 0.0f;
  co_await rchan.Reduce(static_cast<float>(local_sum), total);
  if (my_rank == root) {
    std::printf("[root %d] broadcast %d elements; global sum across %d "
                "ranks: %.1f\n",
                root, n, ctx.world_size(), total);
  }
}

}  // namespace

int main() {
  core::ProgramSpec spec;  // SPMD: the same spec (bitstream) on every rank
  spec.Add(core::OpSpec::Bcast(0, core::DataType::kFloat));
  spec.Add(core::OpSpec::Reduce(1, core::DataType::kFloat));

  core::Cluster cluster(net::Topology::Torus2D(2, 4), spec);
  const int n = 512;
  const int root = 3;  // chosen at runtime, no rebuild
  for (int r = 0; r < cluster.num_ranks(); ++r) {
    cluster.AddKernel(r, App(cluster.context(r), n, root), "app");
  }
  const core::RunResult result = cluster.Run();
  std::printf("completed in %llu cycles (%.2f us)\n",
              static_cast<unsigned long long>(result.cycles),
              result.microseconds);
  return 0;
}
