/// \file gesummv.cpp
/// Distributed GESUMMV (§5.4.1, Fig. 12): y = alpha*A*x + beta*B*x split
/// over two FPGAs by functional decomposition. Runs the single-FPGA and
/// 2-rank versions of the same problem, validates both against a serial
/// reference, and reports the speedup from doubling the aggregate memory
/// bandwidth.
///
/// Build & run:  ./build/examples/gesummv [N]

#include <cstdio>
#include <cstdlib>

#include "apps/gesummv.h"
#include "apps/reference.h"

int main(int argc, char** argv) {
  using namespace smi;

  apps::GesummvConfig config;
  config.rows = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 512;
  config.cols = config.rows;

  std::printf("GESUMMV, %zux%zu matrices, alpha=%.2f beta=%.2f\n",
              config.rows, config.cols, config.alpha, config.beta);

  const apps::GesummvResult single = apps::RunGesummvSingleFpga(config);
  const apps::GesummvResult dist = apps::RunGesummvDistributed(config);

  // Validate against the serial reference.
  const auto a = apps::MakeMatrix(config.rows, config.cols, config.seed);
  const auto b = apps::MakeMatrix(config.rows, config.cols, config.seed + 1);
  const auto x = apps::MakeVector(config.cols, config.seed + 2);
  const auto expect = apps::ReferenceGesummv(a, b, x, config.alpha,
                                             config.beta, config.rows);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    if (single.y[i] != expect[i] || dist.y[i] != expect[i]) ++mismatches;
  }

  std::printf("single FPGA (2 GEMV + AXPY sharing 4 banks): %8.3f ms\n",
              single.run.seconds * 1e3);
  std::printf("distributed (GEMV | SMI | GEMV + AXPY):      %8.3f ms\n",
              dist.run.seconds * 1e3);
  std::printf("speedup: %.2fx, validation: %s\n",
              static_cast<double>(single.run.cycles) /
                  static_cast<double>(dist.run.cycles),
              mismatches == 0 ? "exact match with serial reference"
                              : "MISMATCH");
  return mismatches == 0 ? 0 : 1;
}
