/// \file quickstart.cpp
/// The paper's Listing 1: an MPMD program with two ranks. Rank 0 opens a
/// send channel and streams N integers to rank 1, which opens a receive
/// channel and consumes them one element per cycle — communication
/// integrated directly into the pipelined loops.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/smi.h"

namespace {

using namespace smi;

/// void Rank0(const int N, ...) — Listing 1, sender side.
sim::Kernel Rank0(core::Context& ctx, int n) {
  // SMI_Open_send_channel(N, SMI_INT, 1, 0, SMI_COMM_WORLD)
  core::SendChannel chs = ctx.OpenSendChannel(
      n, core::DataType::kInt, /*destination=*/1, /*port=*/0, ctx.world());
  for (int i = 0; i < n; ++i) {  // #pragma ii 1 — pipelined loop
    const std::int32_t data = i * i;  // create interesting data
    co_await chs.Push(data);          // SMI_Push(&chs, &data)
  }
  std::printf("[rank 0] sent %d elements\n", n);
}

/// void Rank1(const int N, ...) — Listing 1, receiver side.
sim::Kernel Rank1(core::Context& ctx, int n) {
  // SMI_Open_recv_channel(N, SMI_INT, 0, 0, SMI_COMM_WORLD)
  core::RecvChannel chr = ctx.OpenRecvChannel(
      n, core::DataType::kInt, /*source=*/0, /*port=*/0, ctx.world());
  std::int64_t checksum = 0;
  for (int i = 0; i < n; ++i) {  // pipelined loop
    const std::int32_t data = co_await chr.Pop<std::int32_t>();
    checksum += data;  // ...do something useful with data...
  }
  std::printf("[rank 1] received %d elements, checksum %lld\n", n,
              static_cast<long long>(checksum));
}

}  // namespace

int main() {
  // The "bitstream": one send and one recv endpoint on port 0, per rank.
  core::ProgramSpec spec;
  spec.Add(core::OpSpec::Send(0, core::DataType::kInt));
  spec.Add(core::OpSpec::Recv(0, core::DataType::kInt));

  // Two FPGAs connected by a serial cable; routes generated and uploaded.
  core::Cluster cluster(net::Topology::Bus(2), spec);

  const int n = 1000;
  cluster.AddKernel(0, Rank0(cluster.context(0), n), "rank0");
  cluster.AddKernel(1, Rank1(cluster.context(1), n), "rank1");

  const core::RunResult result = cluster.Run();
  std::printf("completed in %llu cycles (%.2f us) — %.2f Gbit/s payload\n",
              static_cast<unsigned long long>(result.cycles),
              result.microseconds,
              static_cast<double>(n) * 4 * 8 / (result.microseconds * 1e3));
  return 0;
}
