/// \file stencil_halo.cpp
/// SPMD distributed stencil with halo exchange (§5.4.2, Fig. 14 and
/// Listing 3): a 4-point Jacobi stencil over a grid decomposed across a
/// 2x4 torus of 8 simulated FPGAs, exchanging halos over transient SMI
/// channels every timestep. Validates the final grid against a serial
/// reference and reports the effective throughput.
///
/// Build & run:  ./build/examples/stencil_halo [grid] [timesteps]

#include <cstdio>
#include <cstdlib>

#include "apps/reference.h"
#include "apps/stencil.h"

int main(int argc, char** argv) {
  using namespace smi;

  apps::StencilConfig config;
  config.nx_global = argc > 1 ? std::atoi(argv[1]) : 256;
  config.ny_global = config.nx_global;
  config.timesteps = argc > 2 ? std::atoi(argv[2]) : 8;
  config.rx = 2;
  config.ry = 4;
  config.banks = 4;

  std::printf("4-point stencil, %dx%d grid, %d timesteps, %dx%d ranks, "
              "%d banks/rank\n",
              config.nx_global, config.ny_global, config.timesteps,
              config.rx, config.ry, config.banks);

  const apps::StencilResult result = apps::RunStencilSmi(config);

  const std::vector<float> expect = apps::ReferenceStencil(
      apps::MakeStencilGrid(config.nx_global, config.ny_global, config.seed),
      static_cast<std::size_t>(config.nx_global),
      static_cast<std::size_t>(config.ny_global), config.timesteps);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < expect.size(); ++i) {
    if (result.grid[i] != expect[i]) ++mismatches;
  }

  const double points = static_cast<double>(config.nx_global) *
                        config.ny_global * config.timesteps;
  std::printf("completed in %.3f ms — %.3f ns per grid point\n",
              result.run.seconds * 1e3, result.run.seconds * 1e9 / points);
  std::printf("halo traffic: %llu network packets; validation: %s\n",
              static_cast<unsigned long long>(result.run.link_packets),
              mismatches == 0 ? "exact match with serial reference"
                              : "MISMATCH");
  return mismatches == 0 ? 0 : 1;
}
