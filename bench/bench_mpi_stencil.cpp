/// \file bench_mpi_stencil.cpp
/// A 10-ish-line MPI Jacobi stencil, ported to the SMI MPI shim: 1-D
/// row-decomposed grid, parity-ordered halo Send/Recv per iteration and an
/// MPI_Allreduce(kMax) residual. The per-iteration residual uses max, which
/// is fold-order independent, so the whole run is bit-exact against a
/// sequential host execution of the same update — the bench validates that
/// before reporting.

#include <cmath>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "mpi/mpi.h"

namespace {

using namespace smi;
using namespace smi::bench;

struct StencilParams {
  int rows = 32;   ///< global interior+boundary rows (divisible by ranks)
  int cols = 16;   ///< row width
  int iters = 4;
};

/// Fixed Dirichlet boundary (1.0 on the global frame), 0.0 interior.
double InitialValue(int gi, int gj, const StencilParams& p) {
  const bool frame =
      gi == 0 || gi == p.rows - 1 || gj == 0 || gj == p.cols - 1;
  return frame ? 1.0 : 0.0;
}

/// One Jacobi sweep over `rows` owned rows with explicit ghost rows;
/// returns the max |new - old| over updated cells. Frame cells (marked by
/// `first_global_row`) are held fixed. Shared verbatim by the simulated
/// ranks and the host reference, so both run identical arithmetic.
double Sweep(const std::vector<double>& ghost_up,
             const std::vector<double>& ghost_down,
             const std::vector<double>& cur, std::vector<double>& next,
             int rows, int first_global_row, const StencilParams& p) {
  const int cols = p.cols;
  double residual = 0.0;
  for (int i = 0; i < rows; ++i) {
    const int gi = first_global_row + i;
    for (int j = 0; j < cols; ++j) {
      const std::size_t at =
          static_cast<std::size_t>(i) * static_cast<std::size_t>(cols) +
          static_cast<std::size_t>(j);
      if (gi == 0 || gi == p.rows - 1 || j == 0 || j == cols - 1) {
        next[at] = cur[at];
        continue;
      }
      const double up =
          i == 0 ? ghost_up[static_cast<std::size_t>(j)] : cur[at - cols];
      const double down = i == rows - 1
                              ? ghost_down[static_cast<std::size_t>(j)]
                              : cur[at + cols];
      next[at] = 0.25 * (up + down + cur[at - 1] + cur[at + 1]);
      const double d = std::fabs(next[at] - cur[at]);
      if (d > residual) residual = d;
    }
  }
  return residual;
}

sim::Kernel StencilRank(core::Context& ctx, StencilParams p,
                        const mpi::ShimConfig& shim,
                        std::vector<double>* slab_out, double* residual_out) {
  mpi::Comm comm = mpi::MPI_Init(ctx, shim);
  int rank = 0, size = 0;
  mpi::MPI_Comm_rank(comm, &rank);
  mpi::MPI_Comm_size(comm, &size);
  const int local_rows = p.rows / size;
  const int first = rank * local_rows;
  const int cols = p.cols;
  std::vector<double> cur(
      static_cast<std::size_t>(local_rows) * static_cast<std::size_t>(cols));
  std::vector<double> next = cur;
  for (int i = 0; i < local_rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      cur[static_cast<std::size_t>(i * cols + j)] =
          InitialValue(first + i, j, p);
    }
  }
  std::vector<double> ghost_up(static_cast<std::size_t>(cols), 0.0);
  std::vector<double> ghost_down(static_cast<std::size_t>(cols), 0.0);
  double residual = 0.0;
  for (int it = 0; it < p.iters; ++it) {
    // Halo exchange, parity-ordered so sends always meet a posted receive:
    // even ranks send both halos first, odd ranks receive first.
    const double* top = cur.data();
    const double* bottom =
        cur.data() + static_cast<std::size_t>((local_rows - 1) * cols);
    const bool has_up = rank > 0;
    const bool has_down = rank < size - 1;
    if (rank % 2 == 0) {
      if (has_down) co_await mpi::MPI_Send(bottom, cols, rank + 1, comm);
      if (has_up) co_await mpi::MPI_Send(top, cols, rank - 1, comm);
      if (has_down) {
        co_await mpi::MPI_Recv(ghost_down.data(), cols, rank + 1, comm);
      }
      if (has_up) {
        co_await mpi::MPI_Recv(ghost_up.data(), cols, rank - 1, comm);
      }
    } else {
      if (has_up) {
        co_await mpi::MPI_Recv(ghost_up.data(), cols, rank - 1, comm);
      }
      if (has_down) {
        co_await mpi::MPI_Recv(ghost_down.data(), cols, rank + 1, comm);
      }
      if (has_up) co_await mpi::MPI_Send(top, cols, rank - 1, comm);
      if (has_down) co_await mpi::MPI_Send(bottom, cols, rank + 1, comm);
    }
    const double local =
        Sweep(ghost_up, ghost_down, cur, next, local_rows, first, p);
    co_await mpi::MPI_Allreduce(&local, &residual, 1, core::ReduceOp::kMax,
                                comm);
    cur.swap(next);
  }
  if (slab_out != nullptr) *slab_out = cur;
  if (residual_out != nullptr) *residual_out = residual;
}

/// Sequential reference: the same Sweep over the whole grid.
void HostStencil(const StencilParams& p, std::vector<double>& grid,
                 double& residual) {
  grid.assign(static_cast<std::size_t>(p.rows) *
                  static_cast<std::size_t>(p.cols),
              0.0);
  for (int i = 0; i < p.rows; ++i) {
    for (int j = 0; j < p.cols; ++j) {
      grid[static_cast<std::size_t>(i * p.cols + j)] = InitialValue(i, j, p);
    }
  }
  std::vector<double> next = grid;
  const std::vector<double> zeros(static_cast<std::size_t>(p.cols), 0.0);
  residual = 0.0;
  for (int it = 0; it < p.iters; ++it) {
    residual = Sweep(zeros, zeros, grid, next, p.rows, 0, p);
    grid.swap(next);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_mpi_stencil",
                "Jacobi stencil ported to the MPI shim (halo exchange + "
                "Allreduce residual), validated bit-exact vs host");
  cli.AddInt("ranks", 4, "world size (rows must divide evenly)");
  cli.AddInt("rows", 32, "global grid rows");
  cli.AddInt("cols", 16, "global grid columns");
  cli.AddInt("iters", 4, "Jacobi iterations");
  AddJsonOption(cli);
  AddObsOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  StencilParams p;
  const int ranks = static_cast<int>(cli.GetInt("ranks"));
  p.rows = static_cast<int>(cli.GetInt("rows"));
  p.cols = static_cast<int>(cli.GetInt("cols"));
  p.iters = static_cast<int>(cli.GetInt("iters"));
  if (ranks < 2 || p.rows % ranks != 0) {
    std::fprintf(stderr, "need ranks >= 2 and rows %% ranks == 0\n");
    return 2;
  }

  core::ClusterConfig config;
  ConfigureObs(cli, config);
  mpi::DecisionLog log;
  mpi::ShimConfig shim;
  shim.log = &log;
  shim.types = {core::DataType::kInt, core::DataType::kDouble};

  core::Cluster cluster(net::Topology::Bus(ranks),
                        mpi::WorldSpec(ranks, shim), config);
  std::vector<std::vector<double>> slabs(static_cast<std::size_t>(ranks));
  std::vector<double> residuals(static_cast<std::size_t>(ranks), -1.0);
  for (int r = 0; r < ranks; ++r) {
    cluster.AddKernel(r,
                      StencilRank(cluster.context(r), p, shim,
                                  &slabs[static_cast<std::size_t>(r)],
                                  &residuals[static_cast<std::size_t>(r)]),
                      "stencil");
  }
  const WallTimer timer;
  const core::RunResult result = cluster.Run();
  cluster.Annotate("selector", log.ToJson());
  const core::RunTelemetry obs = cluster.CaptureTelemetry();

  // Validate bit-exact against the sequential host reference.
  std::vector<double> host_grid;
  double host_residual = 0.0;
  HostStencil(p, host_grid, host_residual);
  const int local_rows = p.rows / ranks;
  for (int r = 0; r < ranks; ++r) {
    const auto& slab = slabs[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < slab.size(); ++i) {
      const std::size_t at =
          static_cast<std::size_t>(r) *
              static_cast<std::size_t>(local_rows * p.cols) +
          i;
      if (slab[i] != host_grid[at]) {
        std::fprintf(stderr, "FAIL: rank %d grid differs from host at %zu\n",
                     r, i);
        return 1;
      }
    }
    if (residuals[static_cast<std::size_t>(r)] != host_residual) {
      std::fprintf(stderr, "FAIL: rank %d residual %.17g != host %.17g\n", r,
                   residuals[static_cast<std::size_t>(r)], host_residual);
      return 1;
    }
  }

  PerfReport report("mpi_stencil");
  report.SetParameter("ranks", ranks);
  report.SetParameter("rows", p.rows);
  report.SetParameter("cols", p.cols);
  report.SetParameter("iters", p.iters);
  const std::string label = std::to_string(p.rows) + "x" +
                            std::to_string(p.cols) + "x" +
                            std::to_string(p.iters);
  report.AddResult("stencil/" + label, result.cycles, result.microseconds,
                   timer.Seconds());
  json::Object validation;
  validation["grid_bit_exact"] = json::Value(true);
  validation["residual"] = json::Value(host_residual);
  report.SetSection("validation", json::Value(std::move(validation)));
  report.SetSection("selector", log.ToJson());
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);

  PrintTitle("MPI-shim Jacobi stencil, " + std::to_string(ranks) +
             " ranks, grid " + label);
  std::printf("cycles %llu, simulated %.2f us, residual %.6g "
              "(bit-exact vs host)\n",
              static_cast<unsigned long long>(result.cycles),
              result.microseconds, host_residual);
  return 0;
}
