/// \file bench_bcast.cpp
/// Figure 10: time to broadcast a message of varying size (FP32 elements)
/// across 4 and 8 FPGAs, on torus and linear-bus cabling, against the
/// host-based MPI+OpenCL model. Lower is better.

#include "baseline/host_model.h"
#include "bench_common.h"

namespace {

using namespace smi;
using namespace smi::bench;

sim::Kernel BcastApp(core::Context& ctx, int count, int root) {
  core::BcastChannel chan = ctx.OpenBcastChannel(
      count, core::DataType::kFloat, /*port=*/0, root, ctx.world());
  const bool is_root = ctx.rank() == root;
  for (int i = 0; i < count; ++i) {
    float v = is_root ? static_cast<float>(i) : 0.0f;
    co_await chan.Bcast(v);
  }
}

double BcastUs(const net::Topology& topo, int count, const std::string& label,
               PerfReport& report, const core::ClusterConfig& config,
               core::RunTelemetry& obs) {
  core::ProgramSpec spec;
  spec.Add(core::OpSpec::Bcast(0, core::DataType::kFloat));
  core::Cluster cluster(topo, spec, config);
  for (int r = 0; r < topo.num_ranks(); ++r) {
    cluster.AddKernel(r, BcastApp(cluster.context(r), count, /*root=*/0),
                      "bcast");
  }
  const WallTimer timer;
  const core::RunResult result = cluster.Run();
  obs = cluster.CaptureTelemetry();
  report.AddResult(label + "/" + std::to_string(count), result.cycles,
                   result.microseconds, timer.Seconds());
  return result.microseconds;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_bcast", "Fig. 10: Bcast time vs message size");
  cli.AddInt("max-elems", 262144, "largest message in FP32 elements");
  AddJsonOption(cli);
  AddObsOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  const baseline::HostModel host;
  core::ClusterConfig config;
  ConfigureObs(cli, config);
  core::RunTelemetry obs;
  PerfReport report("bcast");
  report.SetParameter("max-elems", cli.GetInt("max-elems"));
  PrintTitle("Figure 10 — Bcast time [usecs] (lower is better)");
  std::printf("%10s %12s %12s %12s %12s %12s\n", "elems", "SMI-torus8",
              "SMI-torus4", "SMI-bus8", "SMI-bus4", "MPI+OpenCL8");
  for (int count = 1;
       count <= static_cast<int>(cli.GetInt("max-elems")); count *= 4) {
    const double torus8 = BcastUs(net::Topology::Torus2D(2, 4), count,
                                  "torus8", report, config, obs);
    const double torus4 = BcastUs(net::Topology::Torus2D(2, 2), count,
                                  "torus4", report, config, obs);
    const double bus8 =
        BcastUs(net::Topology::Bus(8), count, "bus8", report, config, obs);
    const double bus4 =
        BcastUs(net::Topology::Bus(4), count, "bus4", report, config, obs);
    const double mpi = host.BcastUs(static_cast<std::uint64_t>(count) * 4, 8);
    std::printf("%10d %12.2f %12.2f %12.2f %12.2f %12.2f\n", count, torus8,
                torus4, bus8, bus4, mpi);
  }
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
