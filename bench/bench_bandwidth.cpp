/// \file bench_bandwidth.cpp
/// Figure 9: point-to-point bandwidth vs message size.
///
/// A source application streams a large message to a receiver over the SMI
/// fabric; the 8 FPGAs are cabled as a linear bus (routes recomputed, no
/// fabric rebuild) so the two endpoints can be placed at 1, 4 or 7 hops.
/// The MPI+OpenCL series is the calibrated host-path model. Reference
/// lines: 40 Gbit/s QSFP line rate and 35 Gbit/s payload peak (after the
/// 4 B/32 B header).
///
/// An extra series sweeps the CK polling parameter R: our sequential-scan
/// arbiter sustains R/(R+4) of payload peak for a single stream, so the
/// default R=8 plateaus at ~23 Gbit/s while large R approaches the paper's
/// ~32 Gbit/s (91% of payload peak); see EXPERIMENTS.md.

#include <cinttypes>

#include "baseline/host_model.h"
#include "bench_common.h"

namespace {

using namespace smi;
using namespace smi::bench;

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_bandwidth", "Fig. 9: bandwidth vs message size");
  cli.AddInt("min-kb", 1, "smallest message in KiB");
  cli.AddInt("max-mb", 16, "largest message in MiB");
  cli.AddInt("poll-r", 8, "CK polling parameter R for the hop series");
  cli.AddFlag("no-r-sweep", "skip the R ablation series");
  AddJsonOption(cli);
  AddObsOptions(cli);
  AddFaultOptions(cli);
  AddFidelityOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  const net::Topology topo = net::Topology::Bus(8);
  const sim::ClockConfig clock;
  const baseline::HostModel host;

  PerfReport report("bandwidth");
  report.SetParameter("min-kb", cli.GetInt("min-kb"));
  report.SetParameter("max-mb", cli.GetInt("max-mb"));
  report.SetParameter("poll-r", cli.GetInt("poll-r"));
  report.SetParameter("ranks", topo.num_ranks());

  PrintTitle("Figure 9 — bandwidth vs message size [Gbit/s]");
  std::printf("%12s %14s %14s %14s %14s\n", "size", "SMI-1hop", "SMI-4hops",
              "SMI-7hops", "MPI+OpenCL");
  std::printf("%12s %14s %14s %14s %14s\n", "", "", "", "",
              "(host model)");

  std::vector<std::uint64_t> sizes;
  for (std::uint64_t b = static_cast<std::uint64_t>(cli.GetInt("min-kb"))
                         << 10;
       b <= static_cast<std::uint64_t>(cli.GetInt("max-mb")) << 20; b <<= 1) {
    sizes.push_back(b);
  }

  core::ClusterConfig config;
  config.fabric.poll_r = static_cast<int>(cli.GetInt("poll-r"));
  ConfigureObs(cli, config);
  ConfigureFidelity(cli, config);
  core::RunTelemetry obs;

  for (const std::uint64_t bytes : sizes) {
    double bw[3] = {0, 0, 0};
    const int dsts[3] = {1, 4, 7};
    for (int h = 0; h < 3; ++h) {
      const WallTimer timer;
      const core::RunResult r =
          StreamOnce(topo, 0, dsts[h], bytes, config, &obs);
      bw[h] = clock.GigabitsPerSecond(bytes, r.cycles);
      report.AddResult(
          std::to_string(dsts[h]) + "hops/" + FormatBytes(bytes), r.cycles,
          clock.CyclesToMicros(r.cycles), timer.Seconds());
    }
    std::printf("%12s %14.2f %14.2f %14.2f %14.2f\n",
                FormatBytes(bytes).c_str(), bw[0], bw[1], bw[2],
                host.BandwidthGbps(bytes));
  }
  std::printf("\npeak QSFP line rate: 40.00 Gbit/s; payload peak after "
              "4B/32B headers: 35.00 Gbit/s\n");

  // Faulty series: the 1-hop stream at the largest size over reliable links
  // with the requested fault plan; overhead vs the lossless 1-hop run.
  core::ClusterConfig fault_config;
  fault_config.fabric.poll_r = static_cast<int>(cli.GetInt("poll-r"));
  if (ConfigureFaults(cli, fault_config) && !sizes.empty()) {
    ConfigureObs(cli, fault_config);
    const std::uint64_t bytes = sizes.back();
    const core::RunResult lossless = StreamOnce(topo, 0, 1, bytes, config);
    const WallTimer timer;
    const core::RunResult faulty =
        StreamOnce(topo, 0, 1, bytes, fault_config, &obs);
    const double lossless_bw = clock.GigabitsPerSecond(bytes, lossless.cycles);
    const double faulty_bw = clock.GigabitsPerSecond(bytes, faulty.cycles);
    PrintTitle("fault plan active — 1 hop, " + FormatBytes(bytes) +
               " over reliable links");
    std::printf("bandwidth: %.2f Gbit/s (lossless: %.2f, overhead %+.1f%%)\n",
                faulty_bw, lossless_bw,
                100.0 * (lossless_bw - faulty_bw) / lossless_bw);
    report.AddResult("1hop+faults/" + FormatBytes(bytes), faulty.cycles,
                     clock.CyclesToMicros(faulty.cycles), timer.Seconds());
    MaybeWriteFaults(report, obs.faults);
  }

  if (!cli.GetFlag("no-r-sweep")) {
    PrintTitle("ablation — plateau bandwidth vs CK polling parameter R "
               "(1 hop, 8 MiB)");
    std::printf("%8s %14s %22s\n", "R", "Gbit/s", "fraction of 35 Gbit/s");
    for (const int r : {1, 2, 4, 8, 16, 32, 64}) {
      core::ClusterConfig rc;
      rc.fabric.poll_r = r;
      const WallTimer timer;
      const core::RunResult res = StreamOnce(topo, 0, 1, 8ull << 20, rc);
      const double gbps = clock.GigabitsPerSecond(8ull << 20, res.cycles);
      std::printf("%8d %14.2f %21.1f%%\n", r, gbps, 100.0 * gbps / 35.0);
      report.AddResult("r-sweep/R=" + std::to_string(r), res.cycles,
                       clock.CyclesToMicros(res.cycles), timer.Seconds());
    }
  }
  MaybeWriteFidelity(report, obs.fidelity);
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
