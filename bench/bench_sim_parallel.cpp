/// \file bench_sim_parallel.cpp
/// Scaling of the parallel (conservative-lookahead) scheduler: a busy
/// neighbour-streaming workload on 8/16/32-rank tori, run under the
/// event-driven scheduler and under kParallel with 1..8 worker threads.
/// Every rank continuously streams to its right ring neighbour, so nearly
/// every simulated cycle has work in every partition — the regime where the
/// ~105-cycle link lookahead lets workers run long private epochs and the
/// speedup is bounded by threads, not by idle-jumping.
///
/// Reported figure of merit: simulated cycles per wall-clock second, plus
/// the speedup of each thread count over the 1-thread parallel run. The
/// 1-thread parallel row vs the event-driven row shows the scheduler's
/// epoch/barrier overhead when no parallelism is available.

#include <thread>

#include "bench_common.h"

namespace {

using namespace smi;
using namespace smi::bench;

sim::Kernel RingSender(core::Context& ctx, int elems) {
  const int right = (ctx.rank() + 1) % ctx.world().size();
  core::SendChannel ch = ctx.OpenSendChannel(elems, core::DataType::kInt,
                                             right, /*port=*/0, ctx.world());
  for (int i = 0; i < elems; ++i) co_await ch.Push<std::int32_t>(i);
}

sim::Kernel RingReceiver(core::Context& ctx, int elems, std::uint64_t& sink) {
  const int n = ctx.world().size();
  const int left = (ctx.rank() + n - 1) % n;
  core::RecvChannel ch = ctx.OpenRecvChannel(elems, core::DataType::kInt,
                                             left, /*port=*/0, ctx.world());
  for (int i = 0; i < elems; ++i) {
    sink += static_cast<std::uint64_t>(co_await ch.Pop<std::int32_t>());
  }
}

struct Measurement {
  sim::Cycle cycles = 0;
  double microseconds = 0.0;
  double wall_seconds = 0.0;
  unsigned partitions = 1;
};

Measurement RunBusyRing(const net::Topology& topo, int elems,
                        sim::SchedulerKind kind, unsigned threads,
                        core::ClusterConfig config,
                        core::RunTelemetry& obs) {
  config.engine.scheduler = kind;
  config.engine.threads = threads;
  core::Cluster cluster(topo, P2pSpec(), config);
  std::uint64_t sink = 0;
  for (int r = 0; r < topo.num_ranks(); ++r) {
    cluster.AddKernel(r, RingSender(cluster.context(r), elems), "send");
    cluster.AddKernel(r, RingReceiver(cluster.context(r), elems, sink),
                      "recv");
  }
  const WallTimer timer;
  const core::RunResult result = cluster.Run();
  obs = cluster.CaptureTelemetry();
  return {result.cycles, result.microseconds, timer.Seconds(),
          result.partitions};
}

double Rate(const Measurement& m) {
  return m.wall_seconds > 0.0
             ? static_cast<double>(m.cycles) / m.wall_seconds
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_sim_parallel",
                "parallel scheduler scaling on busy ring streams");
  cli.AddInt("elems", 20000, "ints each rank streams to its neighbour");
  cli.AddInt("max-threads", 8, "largest worker-thread count");
  AddJsonOption(cli);
  AddObsOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  core::ClusterConfig config;
  ConfigureObs(cli, config);
  core::RunTelemetry obs;
  const int elems = static_cast<int>(cli.GetInt("elems"));
  const int max_threads = static_cast<int>(cli.GetInt("max-threads"));

  PerfReport report("sim_parallel");
  report.SetParameter("elems", elems);
  report.SetParameter("max-threads", max_threads);
  report.SetParameter("hardware_concurrency",
                      static_cast<std::int64_t>(
                          std::thread::hardware_concurrency()));

  struct Shape {
    const char* label;
    int rows, cols;
  };
  const Shape shapes[] = {{"torus 2x4", 2, 4},
                          {"torus 4x4", 4, 4},
                          {"torus 4x8", 4, 8}};

  for (const Shape& s : shapes) {
    const net::Topology topo = net::Topology::Torus2D(s.rows, s.cols);
    PrintTitle(std::string(s.label) + " (" +
               std::to_string(topo.num_ranks()) +
               " ranks) — busy ring stream, " + std::to_string(elems) +
               " ints/rank");
    std::printf("%-22s %12s %16s %10s\n", "scheduler", "cycles",
                "Mcycles/wall-s", "speedup");

    const std::string ranks = std::to_string(topo.num_ranks()) + "ranks";
    const Measurement event = RunBusyRing(
        topo, elems, sim::SchedulerKind::kEventDriven, 1, config, obs);
    report.AddResult(ranks + "/event-driven", event.cycles,
                     event.microseconds, event.wall_seconds);
    std::printf("%-22s %12llu %16.2f %10s\n", "event-driven",
                static_cast<unsigned long long>(event.cycles),
                Rate(event) / 1e6, "-");

    double base_rate = 0.0;
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      const Measurement par = RunBusyRing(
          topo, elems, sim::SchedulerKind::kParallel,
          static_cast<unsigned>(threads), config, obs);
      report.AddResult(
          ranks + "/parallel-t" + std::to_string(threads), par.cycles,
          par.microseconds, par.wall_seconds);
      if (par.cycles != event.cycles) {
        std::printf("CYCLE MISMATCH: parallel t=%d got %llu, expected %llu\n",
                    threads, static_cast<unsigned long long>(par.cycles),
                    static_cast<unsigned long long>(event.cycles));
        return 1;
      }
      const double rate = Rate(par);
      if (threads == 1) base_rate = rate;
      std::printf("%-22s %12llu %16.2f %9.2fx\n",
                  ("parallel, " + std::to_string(threads) + " thr (" +
                   std::to_string(par.partitions) + " part)")
                      .c_str(),
                  static_cast<unsigned long long>(par.cycles), rate / 1e6,
                  base_rate > 0.0 ? rate / base_rate : 0.0);
    }
  }
  std::printf("\nnote: wall-clock scaling depends on available host cores; "
              "simulated cycles are scheduler-invariant.\n");
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
