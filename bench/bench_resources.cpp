/// \file bench_resources.cpp
/// Tables 1 and 2: FPGA resource consumption of the SMI transport
/// (interconnect + communication kernels, for 1 and 4 QSFPs) and of the
/// collective support kernels, from the structural resource model anchored
/// on the paper's synthesis measurements (see resources/model.h).

#include <cstdio>

#include "bench_common.h"
#include "codegen/planner.h"
#include "resources/model.h"

int main(int argc, char** argv) {
  using namespace smi;
  using namespace smi::bench;
  using resources::CollectiveKernel;
  using resources::CommunicationKernels;
  using resources::Interconnect;
  using resources::Resources;
  using resources::Transport;
  using resources::Utilization;
  using resources::Utilize;

  CliParser cli("bench_resources", "Tables 1-2: SMI resource consumption");
  AddJsonOption(cli);
  if (!cli.Parse(argc, argv)) return 2;

  // This bench runs no simulation: the report carries the model numbers as
  // parameters and an empty results array.
  PerfReport report("resources");

  PrintTitle("Table 1 — SMI resource consumption");
  std::printf("%-12s | %9s %9s %7s | %9s %9s %7s\n", "", "LUTs", "FFs",
              "M20Ks", "LUTs", "FFs", "M20Ks");
  std::printf("%-12s | %27s | %27s\n", "", "1 QSFP", "4 QSFPs");
  const Resources i1 = Interconnect(1);
  const Resources i4 = Interconnect(4);
  const Resources c1 = CommunicationKernels(1);
  const Resources c4 = CommunicationKernels(4);
  std::printf("%-12s | %9.0f %9.0f %7.0f | %9.0f %9.0f %7.0f\n", "Interconn.",
              i1.luts, i1.ffs, i1.m20ks, i4.luts, i4.ffs, i4.m20ks);
  std::printf("%-12s | %9.0f %9.0f %7.0f | %9.0f %9.0f %7.0f\n", "C. K.",
              c1.luts, c1.ffs, c1.m20ks, c4.luts, c4.ffs, c4.m20ks);
  const Utilization u1 = Utilize(Transport(1));
  const Utilization u4 = Utilize(Transport(4));
  std::printf("%-12s | %8.1f%% %8.1f%% %6.1f%% | %8.1f%% %8.1f%% %6.1f%%\n",
              "% of max", u1.luts_pct, u1.ffs_pct, u1.m20ks_pct, u4.luts_pct,
              u4.ffs_pct, u4.m20ks_pct);
  std::printf("\n(paper 4-QSFP %%: 1.7%% LUTs, 1.9%% FFs, 0.3%% M20Ks)\n\n");

  PrintTitle("Table 2 — collective support kernel resource consumption");
  std::printf("%-22s %9s %9s %7s %6s\n", "", "LUTs", "FFs", "M20Ks", "DSPs");
  struct Row {
    const char* name;
    core::CollKind kind;
  };
  for (const Row row : {Row{"Broadcast", core::CollKind::kBcast},
                        Row{"Reduce (FP32 SUM)", core::CollKind::kReduce},
                        Row{"Scatter (est.)", core::CollKind::kScatter},
                        Row{"Gather (est.)", core::CollKind::kGather}}) {
    const Resources r = CollectiveKernel(row.kind);
    const Utilization u = Utilize(r);
    std::printf("%-22s %5.0f (%3.1f%%) %5.0f (%3.1f%%) %3.0f %6.0f\n",
                row.name, r.luts, u.luts_pct, r.ffs, u.ffs_pct, r.m20ks,
                r.dsps);
  }

  std::printf("\n");
  PrintTitle("fabric plan resource estimate (codegen) — stencil SPMD rank");
  core::ProgramSpec stencil_spec;
  for (const int p : {1, 2, 3, 4}) {
    stencil_spec.Add(core::OpSpec::Send(p, core::DataType::kFloat));
    stencil_spec.Add(core::OpSpec::Recv(p, core::DataType::kFloat));
  }
  const codegen::FabricPlan plan = codegen::Plan(stencil_spec, 4);
  const Resources res = plan.EstimateResources();
  const Utilization u = Utilize(res);
  std::printf("endpoints: %zu, support kernels: %zu\n", plan.endpoints.size(),
              plan.support_kernels.size());
  std::printf("LUTs %.0f (%.2f%%), FFs %.0f (%.2f%%), M20Ks %.0f (%.2f%%)\n",
              res.luts, u.luts_pct, res.ffs, u.ffs_pct, res.m20ks,
              u.m20ks_pct);
  report.SetParameter("transport4_luts", Transport(4).luts);
  report.SetParameter("transport4_ffs", Transport(4).ffs);
  report.SetParameter("transport4_m20ks", Transport(4).m20ks);
  report.SetParameter("stencil_plan_luts", res.luts);
  report.SetParameter("stencil_plan_ffs", res.ffs);
  report.SetParameter("stencil_plan_m20ks", res.m20ks);
  MaybeWriteReport(cli, report);
  return 0;
}
