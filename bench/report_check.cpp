/// \file report_check.cpp
/// Schema validator for BENCH_<name>.json reports, used by the CI smoke
/// step. The parser itself rejects bare nan/inf (non-finite numbers are
/// serialized as null), so any non-finite metric that slipped into a report
/// fails here either as a parse error or as a null where a number belongs.
///
/// Usage: report_check FILE [FILE...]; exits non-zero on the first invalid
/// report.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "common/json.h"

namespace {

using smi::json::Value;

void Require(bool ok, const std::string& file, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "%s: %s\n", file.c_str(), what.c_str());
    std::exit(1);
  }
}

void RequireFiniteNumber(const Value& row, const char* key,
                         const std::string& file) {
  Require(row.contains(key), file,
          std::string("result missing \"") + key + "\"");
  // The parser guarantees finiteness; a null here means a non-finite value
  // was serialized (json::DumpNumber emits null for nan/inf).
  Require(row.at(key).is_number(), file,
          std::string("result \"") + key +
              "\" is not a finite number (nan/inf serialize as null)");
}

/// Optional "fidelity" section (benches run with --fidelity): mode plus the
/// modeled-cycle fraction and transition counts report_check exists to keep
/// honest — a regression that stops the flow model from engaging shows up
/// here as a malformed or missing section, not as a silently slower CI run.
void CheckFidelity(const Value& fid, const std::string& file) {
  Require(fid.is_object(), file, "\"fidelity\" is not an object");
  Require(fid.contains("mode") && fid.at("mode").is_string(), file,
          "fidelity missing string \"mode\"");
  const std::string& mode = fid.at("mode").as_string();
  Require(mode == "cycle" || mode == "flow" || mode == "auto", file,
          "fidelity \"mode\" must be cycle, flow or auto, got \"" + mode +
              "\"");
  RequireFiniteNumber(fid, "modeled_fraction", file);
  const double frac = fid.at("modeled_fraction").as_double();
  Require(frac >= 0.0 && frac <= 1.0, file,
          "fidelity \"modeled_fraction\" out of [0, 1]");
  RequireFiniteNumber(fid, "promotions", file);
  RequireFiniteNumber(fid, "thrash_warnings", file);
  Require(fid.contains("demotions") && fid.at("demotions").is_object(), file,
          "fidelity missing object \"demotions\"");
  for (const auto& [cause, count] : fid.at("demotions").as_object()) {
    Require(count.is_number(),
            file, "fidelity demotion count \"" + cause +
                      "\" is not a finite number");
  }
  if (fid.contains("links")) {
    Require(fid.at("links").is_array(), file,
            "fidelity \"links\" is not an array");
    for (const Value& row : fid.at("links").as_array()) {
      Require(row.is_object() && row.contains("link") &&
                  row.at("link").is_string(),
              file, "fidelity link row missing string \"link\"");
      RequireFiniteNumber(row, "stepped_cycles", file);
      RequireFiniteNumber(row, "modeled_cycles", file);
      RequireFiniteNumber(row, "modeled_fraction", file);
    }
  }
}

/// Optional "scaleout" section (bench_scaleout): per-point rows plus the
/// per-rank retention summary the CI shape assertion reads.
void CheckScaleout(const Value& sc, const std::string& file) {
  Require(sc.is_object(), file, "\"scaleout\" is not an object");
  Require(sc.contains("points") && sc.at("points").is_array(), file,
          "scaleout missing array \"points\"");
  Require(!sc.at("points").as_array().empty(), file,
          "scaleout \"points\" is empty");
  for (const Value& row : sc.at("points").as_array()) {
    Require(row.is_object() && row.contains("topology") &&
                row.at("topology").is_string(),
            file, "scaleout point missing string \"topology\"");
    Require(row.contains("scheme") && row.at("scheme").is_string(), file,
            "scaleout point missing string \"scheme\"");
    RequireFiniteNumber(row, "ranks", file);
    RequireFiniteNumber(row, "total_ranks", file);
    RequireFiniteNumber(row, "cycles", file);
    RequireFiniteNumber(row, "aggregate_bytes_per_cycle", file);
    RequireFiniteNumber(row, "per_rank_bytes_per_cycle", file);
    RequireFiniteNumber(row, "modeled_fraction", file);
    Require(row.contains("routing_fell_back") &&
                row.at("routing_fell_back").is_bool(),
            file, "scaleout point missing bool \"routing_fell_back\"");
  }
  Require(sc.contains("per_rank_retention") &&
              sc.at("per_rank_retention").is_object(),
          file, "scaleout missing object \"per_rank_retention\"");
  for (const auto& [topo, r] : sc.at("per_rank_retention").as_object()) {
    Require(r.is_number(), file,
            "scaleout retention \"" + topo + "\" is not a finite number");
  }
}

/// Optional "innet" section (bench_innet): per-point tree-vs-in-network
/// Reduce rows plus the per-rank-count link-byte ratios the CI assertion
/// reads (in-transit combining must beat the endpoint reduce on forwarded
/// link bytes at scale).
void CheckInnet(const Value& in, const std::string& file) {
  Require(in.is_object(), file, "\"innet\" is not an object");
  Require(in.contains("points") && in.at("points").is_array(), file,
          "innet missing array \"points\"");
  Require(!in.at("points").as_array().empty(), file,
          "innet \"points\" is empty");
  for (const Value& row : in.at("points").as_array()) {
    Require(row.is_object() && row.contains("algo") &&
                row.at("algo").is_string(),
            file, "innet point missing string \"algo\"");
    const std::string& algo = row.at("algo").as_string();
    Require(algo == "tree" || algo == "innet", file,
            "innet point \"algo\" must be tree or innet, got \"" + algo +
                "\"");
    RequireFiniteNumber(row, "ranks", file);
    RequireFiniteNumber(row, "count", file);
    RequireFiniteNumber(row, "cycles", file);
    RequireFiniteNumber(row, "link_bytes", file);
    RequireFiniteNumber(row, "handler_combined", file);
    RequireFiniteNumber(row, "handler_splits", file);
  }
  Require(in.contains("link_bytes_ratio") &&
              in.at("link_bytes_ratio").is_object(),
          file, "innet missing object \"link_bytes_ratio\"");
  for (const auto& [ranks, r] : in.at("link_bytes_ratio").as_object()) {
    Require(r.is_number(), file,
            "innet link-byte ratio \"" + ranks + "\" is not a finite number");
    Require(r.as_double() > 0.0, file,
            "innet link-byte ratio \"" + ranks + "\" is not positive");
  }
  Require(in.contains("latency_ratio") &&
              in.at("latency_ratio").is_object(),
          file, "innet missing object \"latency_ratio\"");
  for (const auto& [ranks, r] : in.at("latency_ratio").as_object()) {
    Require(r.is_number(), file,
            "innet latency ratio \"" + ranks + "\" is not a finite number");
  }
}

void CheckReport(const std::string& file) {
  Value doc;
  try {
    doc = smi::json::ParseFile(file);
  } catch (const smi::Error& e) {
    Require(false, file, std::string("parse error: ") + e.what());
  }
  Require(doc.contains("name") && doc.at("name").is_string(), file,
          "missing string \"name\"");
  Require(doc.contains("parameters") && doc.at("parameters").is_object(),
          file, "missing object \"parameters\"");
  Require(doc.contains("results") && doc.at("results").is_array(), file,
          "missing array \"results\"");
  const auto& results = doc.at("results").as_array();
  Require(!results.empty(), file, "empty \"results\"");
  for (const Value& row : results) {
    Require(row.is_object() && row.contains("name") &&
                row.at("name").is_string(),
            file, "result row missing string \"name\"");
    RequireFiniteNumber(row, "cycles", file);
    RequireFiniteNumber(row, "simulated_microseconds", file);
    RequireFiniteNumber(row, "wall_seconds", file);
  }
  if (doc.contains("fidelity")) CheckFidelity(doc.at("fidelity"), file);
  if (doc.contains("scaleout")) CheckScaleout(doc.at("scaleout"), file);
  if (doc.contains("innet")) CheckInnet(doc.at("innet"), file);
  std::printf("%s: ok (%zu results)\n", file.c_str(), results.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: report_check FILE [FILE...]\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) CheckReport(argv[i]);
  return 0;
}
