/// \file bench_fifo_depth.cpp
/// Ablation (beyond the paper's figures, motivated by §3.3/§4.2): effect of
/// the application endpoint FIFO depth — the channel "asynchronicity
/// degree" k — on (a) streaming bandwidth and (b) total runtime of a
/// compute/communicate pattern where a sender alternates bursts of
/// computation with bursts of communication. Deeper buffers let the sender
/// commit data to the network and keep computing; the paper calls the
/// buffer size "an optimization parameter ... programs must not rely on
/// these buffer sizes for correctness".

#include "bench_common.h"

namespace {

using namespace smi;
using namespace smi::bench;

/// Streams `total` ints and records the cycle at which the final SMI_Push
/// completed — the moment the sender is free to continue computing. §3.3:
/// "an SMI send is non-local: it can be started whether or not the receiver
/// is ready ... its completion may depend on the receiver, if the message
/// size is larger than k".
sim::Kernel TimedSender(core::Context& ctx, int total, const sim::Cycle* now,
                        sim::Cycle& done_at) {
  core::SendChannel ch = ctx.OpenSendChannel(total, core::DataType::kInt, 1,
                                             0, ctx.world());
  for (int i = 0; i < total; ++i) {
    co_await ch.Push<std::int32_t>(i);
  }
  done_at = *now;
}

/// Receiver that is busy computing for `delay` cycles before draining.
sim::Kernel DelayedReceiver(core::Context& ctx, int total, int delay) {
  co_await sim::WaitCycles{static_cast<sim::Cycle>(delay)};
  core::RecvChannel ch = ctx.OpenRecvChannel(total, core::DataType::kInt, 0,
                                             0, ctx.world());
  for (int i = 0; i < total; ++i) {
    (void)co_await ch.Pop<std::int32_t>();
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_fifo_depth",
                "ablation: endpoint FIFO depth (asynchronicity degree)");
  cli.AddInt("elems", 20000, "message length in ints");
  cli.AddInt("burst", 256, "compute/communicate burst length");
  AddJsonOption(cli);
  AddObsOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;
  core::RunTelemetry obs;

  const int total = static_cast<int>(cli.GetInt("elems"));
  const int delay = static_cast<int>(cli.GetInt("burst")) * 40;
  const net::Topology topo = net::Topology::Bus(2);
  const sim::ClockConfig clock;
  PerfReport report("fifo_depth");
  report.SetParameter("elems", total);
  report.SetParameter("burst", cli.GetInt("burst"));

  PrintTitle("endpoint FIFO depth vs sender completion — " +
             std::to_string(total) + " ints, receiver busy for " +
             std::to_string(delay) + " cycles");
  std::printf("%10s %18s %14s\n", "depth k", "sender done [cyc]",
              "total [cyc]");
  for (const std::size_t depth : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u,
                                  512u}) {
    core::ClusterConfig config;
    config.fabric.endpoint_fifo_depth = depth;
    ConfigureObs(cli, config);
    core::Cluster cluster(topo, P2pSpec(), config);
    sim::Cycle done_at = 0;
    cluster.AddKernel(0,
                      TimedSender(cluster.context(0), total,
                                  cluster.engine().now_ptr(), done_at),
                      "sender");
    cluster.AddKernel(1, DelayedReceiver(cluster.context(1), total, delay),
                      "receiver");
    const WallTimer timer;
    const core::RunResult r = cluster.Run();
    obs = cluster.CaptureTelemetry();
    report.AddResult("burst/k=" + std::to_string(depth), r.cycles,
                     r.microseconds, timer.Seconds());
    std::printf("%10zu %18llu %14llu\n", depth,
                static_cast<unsigned long long>(done_at),
                static_cast<unsigned long long>(r.cycles));
  }

  PrintTitle("endpoint FIFO depth vs plateau bandwidth — continuous stream, "
             "8 MiB");
  std::printf("%10s %14s\n", "depth k", "Gbit/s");
  for (const std::size_t depth : {2u, 8u, 32u, 128u}) {
    core::ClusterConfig config;
    config.fabric.endpoint_fifo_depth = depth;
    ConfigureObs(cli, config);
    const WallTimer timer;
    const core::RunResult r = StreamOnce(topo, 0, 1, 8ull << 20, config, &obs);
    report.AddResult("stream/k=" + std::to_string(depth), r.cycles,
                     r.microseconds, timer.Seconds());
    std::printf("%10zu %14.2f\n", depth,
                clock.GigabitsPerSecond(8ull << 20, r.cycles));
  }
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
