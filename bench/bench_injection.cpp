/// \file bench_injection.cpp
/// Table 4: average injection rate in cycles per message.
///
/// A sender application opens a send channel and pushes a one-element
/// message every iteration of a pipelined loop; the fabric has 4 CKS/CKR
/// pairs (the paper's 4-QSFP configuration), so the serving CKS has five
/// incoming connections (application, paired CKR, three other CKS) and its
/// sequential polling scheme yields (R+4)/R cycles per packet for a lone
/// saturating source — exactly 5 cycles at R=1, as the paper measures.

#include "bench_common.h"

namespace {

using namespace smi;
using namespace smi::bench;

sim::Kernel OneElementMessages(core::Context& ctx, int dst, int n) {
  // Each message is one element -> one packet (partial payload), opened as
  // a fresh transient channel: zero-overhead opens make this equivalent to
  // a packet-per-cycle offered load.
  core::SendChannel ch =
      ctx.OpenSendChannel(n, core::DataType::kInt, dst, 0, ctx.world());
  for (int i = 0; i < n; ++i) {
    // PushPacket with a single element: one packet per call.
    const std::int32_t v = i;
    co_await ch.PushPacket<std::int32_t>(&v, 1);
  }
}

sim::Kernel DrainPackets(core::Context& ctx, int src, int n) {
  core::RecvChannel ch =
      ctx.OpenRecvChannel(n, core::DataType::kInt, src, 0, ctx.world());
  for (int i = 0; i < n; ++i) {
    (void)co_await ch.PopPacket<std::int32_t>();
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_injection", "Table 4: injection rate vs R");
  cli.AddInt("messages", 4000, "messages to inject per configuration");
  AddJsonOption(cli);
  AddObsOptions(cli);
  AddFaultOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;
  core::RunTelemetry obs;

  const net::Topology topo = net::Topology::Torus2D(2, 4);
  const sim::ClockConfig clock;
  const int n = static_cast<int>(cli.GetInt("messages"));
  PerfReport report("injection");
  report.SetParameter("messages", n);

  PrintTitle("Table 4 — average injection rate in cycles per message");
  std::printf("%10s %10s %10s %10s\n", "R = 1", "R = 4", "R = 8", "R = 16");
  double rates[4];
  const int rs[4] = {1, 4, 8, 16};
  for (int i = 0; i < 4; ++i) {
    core::ClusterConfig config;
    config.fabric.poll_r = rs[i];
    ConfigureObs(cli, config);
    core::Cluster cluster(topo, P2pSpec(), config);
    cluster.AddKernel(0, OneElementMessages(cluster.context(0), 1, n),
                      "inject");
    cluster.AddKernel(1, DrainPackets(cluster.context(1), 0, n), "drain");
    const WallTimer timer;
    const core::RunResult result = cluster.Run();
    obs = cluster.CaptureTelemetry();
    rates[i] = static_cast<double>(result.cycles) / static_cast<double>(n);
    report.AddResult("R=" + std::to_string(rs[i]), result.cycles,
                     clock.CyclesToMicros(result.cycles), timer.Seconds());
  }
  std::printf("%10.2f %10.2f %10.2f %10.2f\n", rates[0], rates[1], rates[2],
              rates[3]);
  std::printf("\n(paper: 5 / 2.5 / 1.8 / 1.69)\n");

  // Faulty series: the same R=8 injection run over reliable links with the
  // requested fault plan; overhead is measured against the lossless R=8 run.
  core::ClusterConfig fault_config;
  fault_config.fabric.poll_r = 8;
  if (ConfigureFaults(cli, fault_config)) {
    ConfigureObs(cli, fault_config);
    core::Cluster cluster(topo, P2pSpec(), fault_config);
    cluster.AddKernel(0, OneElementMessages(cluster.context(0), 1, n),
                      "inject");
    cluster.AddKernel(1, DrainPackets(cluster.context(1), 0, n), "drain");
    const WallTimer timer;
    const core::RunResult result = cluster.Run();
    obs = cluster.CaptureTelemetry();
    const double faulty_rate =
        static_cast<double>(result.cycles) / static_cast<double>(n);
    PrintTitle("fault plan active — R = 8 over reliable links");
    std::printf("cycles/message: %.2f (lossless: %.2f, overhead %+.1f%%)\n",
                faulty_rate, rates[2],
                100.0 * (faulty_rate - rates[2]) / rates[2]);
    report.AddResult("R=8+faults", result.cycles,
                     clock.CyclesToMicros(result.cycles), timer.Seconds());
    MaybeWriteFaults(report, cluster.FaultsJson());
  }
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
