#include "bench_common.h"

namespace smi::bench {
namespace {

using core::Cluster;
using core::Context;
using core::DataType;
using core::RecvChannel;
using core::SendChannel;
using sim::Kernel;

Kernel StreamSender(Context& ctx, int dst, int packets) {
  SendChannel ch = ctx.OpenSendChannel(packets * 7, DataType::kInt, dst, 0,
                                       ctx.world());
  std::int32_t vals[7] = {0, 1, 2, 3, 4, 5, 6};
  for (int p = 0; p < packets; ++p) {
    co_await ch.PushPacket<std::int32_t>(vals, 7);
  }
}

Kernel StreamReceiver(Context& ctx, int src, int packets) {
  RecvChannel ch = ctx.OpenRecvChannel(packets * 7, DataType::kInt, src, 0,
                                       ctx.world());
  for (int p = 0; p < packets; ++p) {
    (void)co_await ch.PopPacket<std::int32_t>();
  }
}

Kernel PingPong(Context& ctx, int peer, int rounds, bool initiator) {
  for (int r = 0; r < rounds; ++r) {
    if (initiator) {
      SendChannel s =
          ctx.OpenSendChannel(1, DataType::kInt, peer, 0, ctx.world());
      co_await s.Push<std::int32_t>(r);
      RecvChannel rc =
          ctx.OpenRecvChannel(1, DataType::kInt, peer, 0, ctx.world());
      (void)co_await rc.Pop<std::int32_t>();
    } else {
      RecvChannel rc =
          ctx.OpenRecvChannel(1, DataType::kInt, peer, 0, ctx.world());
      const std::int32_t v = co_await rc.Pop<std::int32_t>();
      SendChannel s =
          ctx.OpenSendChannel(1, DataType::kInt, peer, 0, ctx.world());
      co_await s.Push<std::int32_t>(v);
    }
  }
}

}  // namespace

void AddJsonOption(CliParser& cli) {
  cli.AddString("json", "",
                "write a machine-readable BENCH_<name>.json report to this "
                "path (\"auto\" = ./BENCH_<name>.json)");
}

std::string MaybeWriteReport(const CliParser& cli, const PerfReport& report) {
  std::string path = cli.GetString("json");
  if (path.empty()) return "";
  if (path == "auto") path = PerfReport::DefaultPath(report.name());
  report.Write(path);
  std::printf("\nwrote %s\n", path.c_str());
  return path;
}

void AddObsOptions(CliParser& cli) {
  cli.AddString("counters", "",
                "write per-entity telemetry counters (FIFO stalls, CK "
                "polling, link utilization) to this path "
                "(\"auto\" = ./COUNTERS_<name>.json)");
  cli.AddString("trace", "",
                "write a Chrome trace-event timeline (kernel activity, "
                "packet hops) to this path (\"auto\" = ./TRACE_<name>.json)");
}

bool ConfigureObs(const CliParser& cli, core::ClusterConfig& config) {
  const bool counters = !cli.GetString("counters").empty();
  const bool trace = !cli.GetString("trace").empty();
  if (counters) config.engine.collect_counters = true;
  if (trace) config.engine.collect_trace = true;
  return counters || trace;
}

void MaybeWriteObs(const CliParser& cli, PerfReport& report,
                   const core::RunTelemetry& obs) {
  report.SetSection("observability", obs.summary);
  const auto write_doc = [&](const char* option, const char* prefix,
                             const json::Value& doc) {
    std::string path = cli.GetString(option);
    if (path.empty() || doc.is_null()) return;
    if (path == "auto") path = prefix + report.name() + ".json";
    json::WriteFile(path, doc);
    std::printf("wrote %s\n", path.c_str());
  };
  write_doc("counters", "COUNTERS_", obs.counters);
  write_doc("trace", "TRACE_", obs.trace);
}

void AddFaultOptions(CliParser& cli) {
  cli.AddString("fault-plan", "",
                "enable fault injection + reliable links: an inline spec "
                "(\"drop=0.01,corrupt=0.001,budget=4\") or a JSON plan file "
                "(see src/fault/fault.h)");
  cli.AddInt("fault-seed", 0,
             "override the fault plan's seed (0 = keep the plan's)");
}

bool ConfigureFaults(const CliParser& cli, core::ClusterConfig& config) {
  const std::string plan = cli.GetString("fault-plan");
  if (plan.empty()) return false;
  config.fabric.fault = fault::FaultPlan::Parse(plan);
  const std::int64_t seed = cli.GetInt("fault-seed");
  if (seed != 0) config.fabric.fault.seed = static_cast<std::uint64_t>(seed);
  return true;
}

void MaybeWriteFaults(PerfReport& report, const json::Value& faults) {
  if (faults.is_null()) return;
  report.SetSection("faults", faults);
}

void AddFidelityOptions(CliParser& cli) {
  cli.AddString("fidelity", "cycle",
                "link simulation fidelity: \"cycle\" (cycle-accurate), "
                "\"flow\" (analytic flow model), or \"auto\" (flow with "
                "automatic drop-down to cycle accuracy; see sim/fidelity.h)");
  cli.AddString("fidelity-calibration", "",
                "flow-model calibration constants, a JSON file like "
                "data/fidelity_calibration.json (empty = identity constants)");
}

bool ConfigureFidelity(const CliParser& cli, core::ClusterConfig& config) {
  config.engine.fidelity.mode = sim::ParseFidelityMode(cli.GetString("fidelity"));
  const std::string calib = cli.GetString("fidelity-calibration");
  if (!calib.empty()) {
    config.engine.fidelity.calibration = sim::FidelityCalibration::FromFile(calib);
  }
  return config.engine.fidelity.enabled();
}

void MaybeWriteFidelity(PerfReport& report, const json::Value& fidelity) {
  if (fidelity.is_null()) return;
  report.SetSection("fidelity", fidelity);
}

core::RunResult StreamOnce(const net::Topology& topo, int src, int dst,
                           std::uint64_t bytes,
                           const core::ClusterConfig& config,
                           core::RunTelemetry* obs) {
  // Payload bytes -> wide-datapath packets (28 B of payload each).
  const int packets =
      static_cast<int>((bytes + net::kPayloadBytes - 1) / net::kPayloadBytes);
  Cluster cluster(topo, P2pSpec(), config);
  cluster.AddKernel(src, StreamSender(cluster.context(src), dst, packets),
                    "stream-send");
  cluster.AddKernel(dst, StreamReceiver(cluster.context(dst), src, packets),
                    "stream-recv");
  const core::RunResult result = cluster.Run();
  if (obs != nullptr) *obs = cluster.CaptureTelemetry();
  return result;
}

sim::Cycle PingPongOnce(const net::Topology& topo, int src, int dst,
                        const core::ClusterConfig& config, int rounds,
                        core::RunTelemetry* obs) {
  Cluster cluster(topo, P2pSpec(), config);
  cluster.AddKernel(src, PingPong(cluster.context(src), dst, rounds, true),
                    "ping");
  cluster.AddKernel(dst, PingPong(cluster.context(dst), src, rounds, false),
                    "pong");
  const core::RunResult result = cluster.Run();
  if (obs != nullptr) *obs = cluster.CaptureTelemetry();
  return result.cycles;
}

}  // namespace smi::bench
