/// \file bench_latency.cpp
/// Table 3: point-to-point message latency in microseconds, measured as
/// half the round-trip time of a one-element ping-pong, at network
/// distances of 1, 4 and 7 hops (bus cabling), against the host-based
/// MPI+OpenCL path model.

#include "baseline/host_model.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace smi;
  using namespace smi::bench;

  CliParser cli("bench_latency", "Table 3: p2p latency (usecs)");
  cli.AddInt("rounds", 16, "ping-pong rounds to average over");
  AddJsonOption(cli);
  AddObsOptions(cli);
  AddFaultOptions(cli);
  AddFidelityOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  const net::Topology topo = net::Topology::Bus(8);
  const sim::ClockConfig clock;
  const baseline::HostModel host;
  const int rounds = static_cast<int>(cli.GetInt("rounds"));
  core::ClusterConfig config;
  ConfigureObs(cli, config);
  ConfigureFidelity(cli, config);
  core::RunTelemetry obs;

  PrintTitle("Table 3 — measured latency in usecs "
             "(half round-trip of a 1-element message)");
  std::printf("%14s %10s %10s %10s\n", "MPI+OpenCL", "SMI-1", "SMI-4",
              "SMI-7");
  PerfReport report("latency");
  report.SetParameter("rounds", rounds);
  double smi_us[3] = {0, 0, 0};
  const int dsts[3] = {1, 4, 7};
  for (int h = 0; h < 3; ++h) {
    const WallTimer timer;
    const sim::Cycle cycles =
        PingPongOnce(topo, 0, dsts[h], config, rounds, &obs);
    smi_us[h] = clock.CyclesToMicros(cycles) / (2.0 * rounds);
    report.AddResult(std::to_string(dsts[h]) + "hops", cycles,
                     clock.CyclesToMicros(cycles), timer.Seconds());
  }
  std::printf("%14.2f %10.3f %10.3f %10.3f\n", host.LatencyUs(4), smi_us[0],
              smi_us[1], smi_us[2]);
  std::printf("\n(paper: 36.61 / 0.801 / 2.896 / 5.103)\n");

  // Faulty series: the 1-hop ping-pong over reliable links with the
  // requested fault plan vs the lossless 1-hop latency.
  core::ClusterConfig fault_config;
  if (ConfigureFaults(cli, fault_config)) {
    ConfigureObs(cli, fault_config);
    const WallTimer timer;
    const sim::Cycle cycles =
        PingPongOnce(topo, 0, 1, fault_config, rounds, &obs);
    const double faulty_us = clock.CyclesToMicros(cycles) / (2.0 * rounds);
    PrintTitle("fault plan active — 1 hop over reliable links");
    std::printf("latency: %.3f usecs (lossless: %.3f, overhead %+.1f%%)\n",
                faulty_us, smi_us[0],
                100.0 * (faulty_us - smi_us[0]) / smi_us[0]);
    report.AddResult("1hop+faults", cycles, clock.CyclesToMicros(cycles),
                     timer.Seconds());
    MaybeWriteFaults(report, obs.faults);
  }
  MaybeWriteFidelity(report, obs.fidelity);
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
