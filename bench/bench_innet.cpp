/// \file bench_innet.cpp
/// Headline for the in-network compute PR: tree-Reduce (all combining at
/// endpoint support kernels along the binomial tree) versus reduce-in-transit
/// (CollAlgo::kInnet — contributions stream flat toward the root and the CKS
/// combine stages merge packets hop by hop; transport/handler.h). Sweeps
/// 8-64 ranks on 2D tori and reports latency plus *forwarded link bytes*,
/// the metric in-transit combining exists to shrink: every merge at an
/// intermediate hop removes one packet from every remaining link on the
/// path to the root.
///
/// The machine-readable report carries an "innet" section (validated by
/// report_check): per-point rows plus innet/tree ratio maps keyed by rank
/// count. `--check-ratio` makes the bench itself fail when combining does
/// not beat the endpoint reduce on link bytes at >= 32 ranks — the CI smoke
/// assertion.

#include <cinttypes>
#include <map>

#include "bench_common.h"
#include "net/packet.h"

namespace {

using namespace smi;
using namespace smi::bench;
using core::Cluster;

sim::Kernel ReduceApp(core::Context& ctx, int count, int root, int credits,
                      std::vector<int>& results) {
  core::ReduceChannel chan =
      ctx.OpenReduceChannel(count, core::DataType::kInt, core::ReduceOp::kAdd,
                            0, root, ctx.world(), credits);
  for (int i = 0; i < count; ++i) {
    int rcv = -1;
    co_await chan.Reduce(i + ctx.rank() * 1000, rcv);
    if (ctx.rank() == root) results.push_back(rcv);
  }
}

struct Point {
  core::RunResult run;
  std::uint64_t link_bytes = 0;
  std::uint64_t combined = 0;
  std::uint64_t splits = 0;
  double wall_seconds = 0.0;
  core::RunTelemetry telemetry;
};

Point RunPoint(const net::Topology& topo, core::CollAlgo algo, int count,
               int credits, core::ClusterConfig config) {
  // Handler activity is read from the telemetry summary, so this bench
  // always collects counters (cost is per-event, negligible at these sizes).
  config.engine.collect_counters = true;

  core::ProgramSpec spec;
  spec.Add(core::OpSpec::Reduce(0, core::DataType::kInt, algo,
                                core::ReduceOp::kAdd));
  Cluster cluster(topo, spec, config);
  const int n = topo.num_compute_ranks();
  std::vector<int> results;
  for (int r = 0; r < n; ++r) {
    cluster.AddKernel(r, ReduceApp(cluster.context(r), count, 0, credits,
                                   results),
                      "reduce");
  }
  const WallTimer timer;
  Point pt;
  pt.run = cluster.Run();
  pt.wall_seconds = timer.Seconds();
  pt.telemetry = cluster.CaptureTelemetry();
  pt.link_bytes = pt.run.link_packets * net::kPacketBytes;
  pt.combined = static_cast<std::uint64_t>(
      pt.telemetry.summary.at("ck_handler_combined").as_int());
  pt.splits = static_cast<std::uint64_t>(
      pt.telemetry.summary.at("ck_handler_splits").as_int());

  // Host-reference check: element i reduces to n*i + 1000 * (0+1+...+n-1).
  if (results.size() != static_cast<std::size_t>(count)) {
    throw Error("innet bench: root saw " + std::to_string(results.size()) +
                " results, expected " + std::to_string(count));
  }
  const int base = 1000 * (n * (n - 1) / 2);
  for (int i = 0; i < count; ++i) {
    const int want = n * i + base;
    if (results[static_cast<std::size_t>(i)] != want) {
      throw Error("innet bench: wrong reduction at element " +
                  std::to_string(i) + ": got " +
                  std::to_string(results[static_cast<std::size_t>(i)]) +
                  ", want " + std::to_string(want));
    }
  }
  return pt;
}

net::Topology MakeTorus(int ranks) {
  switch (ranks) {
    case 8: return net::Topology::Torus2D(2, 4);
    case 16: return net::Topology::Torus2D(4, 4);
    case 32: return net::Topology::Torus2D(4, 8);
    case 64: return net::Topology::Torus2D(8, 8);
    default:
      throw ConfigError("innet sweep supports 8/16/32/64 ranks, got " +
                        std::to_string(ranks));
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_innet",
                "tree-Reduce vs reduce-in-transit combining, 8-64 ranks");
  cli.AddInt("max-ranks", 64, "largest rank count (8/16/32/64)");
  cli.AddInt("count", 4096, "elements reduced per rank");
  cli.AddInt("credits", 64, "flow-control tile size C");
  cli.AddInt("hold", 16,
             "combine-buffer hold window in cycles (ClusterConfig::"
             "innet_hold_cycles); the default absorbs the residual jitter "
             "of the paced streams (see innet.h)");
  cli.AddFlag("check-ratio",
              "fail unless in-transit combining beats the tree reduce on "
              "forwarded link bytes at every swept size >= 32 ranks");
  AddJsonOption(cli);
  AddObsOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  try {
    const int max_ranks = static_cast<int>(cli.GetInt("max-ranks"));
    const int count = static_cast<int>(cli.GetInt("count"));
    const int credits = static_cast<int>(cli.GetInt("credits"));

    core::ClusterConfig config;
    ConfigureObs(cli, config);
    config.innet_hold_cycles = static_cast<int>(cli.GetInt("hold"));

    PerfReport report("innet");
    report.SetParameter("max-ranks", max_ranks);
    report.SetParameter("count", count);
    report.SetParameter("credits", credits);
    report.SetParameter("hold", config.innet_hold_cycles);

    PrintTitle("Reduce: binomial tree vs in-transit combining (" +
               std::to_string(count) + " ints, 2D torus)");
    std::printf("%6s %12s %12s %8s %14s %14s %8s %10s\n", "ranks",
                "tree[cyc]", "innet[cyc]", "speedup", "tree[linkB]",
                "innet[linkB]", "byteR", "combined");

    json::Array rows;
    json::Object byte_ratio;
    json::Object latency_ratio;
    bool ratio_ok = true;
    core::RunTelemetry last;
    for (int ranks = 8; ranks <= max_ranks; ranks *= 2) {
      const net::Topology topo = MakeTorus(ranks);
      const Point tree =
          RunPoint(topo, core::CollAlgo::kTree, count, credits, config);
      const Point innet =
          RunPoint(topo, core::CollAlgo::kInnet, count, credits, config);

      const double br = tree.link_bytes > 0
                            ? static_cast<double>(innet.link_bytes) /
                                  static_cast<double>(tree.link_bytes)
                            : 0.0;
      const double lr = tree.run.cycles > 0
                            ? static_cast<double>(innet.run.cycles) /
                                  static_cast<double>(tree.run.cycles)
                            : 0.0;
      const std::string key = std::to_string(ranks);
      byte_ratio[key] = br;
      latency_ratio[key] = lr;
      if (ranks >= 32 && br >= 1.0) ratio_ok = false;

      std::printf(
          "%6d %12" PRIu64 " %12" PRIu64 " %7.2fx %14" PRIu64 " %14" PRIu64
          " %8.3f %10" PRIu64 "\n",
          ranks, tree.run.cycles, innet.run.cycles, lr > 0.0 ? 1.0 / lr : 0.0,
          tree.link_bytes, innet.link_bytes, br, innet.combined);

      for (const auto* pt : {&tree, &innet}) {
        const bool is_innet = pt == &innet;
        const std::string algo = is_innet ? "innet" : "tree";
        report.AddResult(algo + "/" + key + "ranks", pt->run.cycles,
                         pt->run.microseconds, pt->wall_seconds);
        json::Object row;
        row["algo"] = algo;
        row["ranks"] = ranks;
        row["count"] = count;
        row["cycles"] = pt->run.cycles;
        row["simulated_microseconds"] = pt->run.microseconds;
        row["link_bytes"] = pt->link_bytes;
        row["handler_combined"] = pt->combined;
        row["handler_splits"] = pt->splits;
        rows.push_back(json::Value(std::move(row)));
      }
      last = innet.telemetry;
    }

    json::Object innet_doc;
    innet_doc["points"] = json::Value(std::move(rows));
    innet_doc["link_bytes_ratio"] = json::Value(std::move(byte_ratio));
    innet_doc["latency_ratio"] = json::Value(std::move(latency_ratio));
    report.SetSection("innet", json::Value(std::move(innet_doc)));

    MaybeWriteObs(cli, report, last);
    MaybeWriteReport(cli, report);

    if (cli.GetFlag("check-ratio") && !ratio_ok) {
      std::fprintf(stderr,
                   "RATIO FAIL: in-transit combining did not reduce "
                   "forwarded link bytes at >= 32 ranks\n");
      return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
