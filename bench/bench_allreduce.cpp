/// \file bench_allreduce.cpp
/// Allreduce latency/bandwidth sweep: the linear (flat-tree) composition vs
/// the binomial tree vs the per-size selector, driven end-to-end through
/// the MPI shim (so the sweep exercises the same path an MPI port uses).
/// The "selector" series records which algorithm the rule table picked at
/// each message size — the JSON report shows the switch point explicitly.

#include <cstdlib>
#include <vector>

#include "baseline/host_model.h"
#include "baseline/host_reference.h"
#include "bench_common.h"
#include "mpi/mpi.h"

namespace {

using namespace smi;
using namespace smi::bench;

/// Force one algorithm regardless of size (single always-matching rule).
mpi::Selector ForceAlgo(core::CollAlgo algo) {
  return mpi::Selector({mpi::SelectorRule{std::nullopt, 0, 0, 0, 0, algo}});
}

/// Contribution of `rank` — small exact integers, so the float sum is
/// bit-exact in any fold order and comparable against the host reference.
std::vector<float> Contribution(int rank, int count) {
  std::vector<float> v(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    v[static_cast<std::size_t>(i)] =
        static_cast<float>((i + rank * 31) % 256);
  }
  return v;
}

sim::Kernel AllreduceApp(core::Context& ctx, int count,
                         const mpi::ShimConfig& shim,
                         std::vector<float>* result_out) {
  mpi::Comm comm = mpi::MPI_Init(ctx, shim);
  const std::vector<float> snd = Contribution(comm.rank(), count);
  std::vector<float> rcv(static_cast<std::size_t>(count));
  co_await mpi::MPI_Allreduce(snd.data(), rcv.data(), count,
                              core::ReduceOp::kAdd, comm);
  if (result_out != nullptr) *result_out = rcv;
}

net::Topology TopologyFor(int ranks) {
  if (ranks == 8) return net::Topology::Torus2D(2, 4);
  if (ranks == 16) return net::Topology::Torus2D(4, 4);
  return net::Topology::Bus(ranks);
}

double RunUs(int ranks, int count, const mpi::Selector& selector,
             const std::string& label, PerfReport& report,
             const core::ClusterConfig& config, mpi::DecisionLog* log,
             core::RunTelemetry& obs) {
  mpi::ShimConfig shim;
  shim.selector = selector;
  shim.log = log;
  shim.types = {core::DataType::kFloat};
  core::Cluster cluster(TopologyFor(ranks), mpi::WorldSpec(ranks, shim),
                        config);
  std::vector<float> rank0;
  for (int r = 0; r < ranks; ++r) {
    cluster.AddKernel(r,
                      AllreduceApp(cluster.context(r), count, shim,
                                   r == 0 ? &rank0 : nullptr),
                      "app");
  }
  const WallTimer timer;
  const core::RunResult result = cluster.Run();
  if (log != nullptr) cluster.Annotate("selector", log->ToJson());
  obs = cluster.CaptureTelemetry();
  report.AddResult(label + "/" + std::to_string(count), result.cycles,
                   result.microseconds, timer.Seconds());

  // Validate against the bit-exact host reference.
  std::vector<std::vector<float>> contribs;
  for (int r = 0; r < ranks; ++r) contribs.push_back(Contribution(r, count));
  const std::vector<float> expect =
      baseline::HostAllreduce(contribs, core::ReduceOp::kAdd);
  if (rank0 != expect) {
    std::fprintf(stderr, "FAIL: %s/%d does not match the host reference\n",
                 label.c_str(), count);
    std::exit(1);
  }
  return result.microseconds;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_allreduce",
                "Allreduce: linear vs tree vs per-size selector (MPI shim)");
  cli.AddInt("ranks", 8, "world size (8 -> 2x4 torus, 16 -> 4x4 torus, "
                         "other -> bus)");
  cli.AddInt("max-elems", 16384, "largest message in FP32 elements");
  AddJsonOption(cli);
  AddObsOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  const int ranks = static_cast<int>(cli.GetInt("ranks"));
  const int max_elems = static_cast<int>(cli.GetInt("max-elems"));

  core::ClusterConfig config;
  ConfigureObs(cli, config);
  core::RunTelemetry obs;
  mpi::DecisionLog log;
  const mpi::Selector defaults = mpi::Selector::Defaults();
  const baseline::HostModel host;

  PerfReport report("allreduce");
  report.SetParameter("ranks", ranks);
  report.SetParameter("max-elems", max_elems);

  PrintTitle("Allreduce — linear vs tree vs selector [usecs], " +
             std::to_string(ranks) + " ranks");
  std::printf("%10s %12s %12s %12s %10s %12s\n", "elems", "linear", "tree",
              "selector", "chosen", "host MPI");
  json::Array decisions;
  for (int count = 16; count <= max_elems; count *= 4) {
    const double linear =
        RunUs(ranks, count, ForceAlgo(core::CollAlgo::kLinear),
              "allreduce/linear", report, config, nullptr, obs);
    const double tree =
        RunUs(ranks, count, ForceAlgo(core::CollAlgo::kTree),
              "allreduce/tree", report, config, nullptr, obs);
    const double selected = RunUs(ranks, count, defaults,
                                  "allreduce/selector", report, config, &log,
                                  obs);
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(count) * sizeof(float);
    const core::CollAlgo chosen =
        defaults.Choose(core::CollKind::kAllreduce, bytes, ranks);
    const char* chosen_name =
        chosen == core::CollAlgo::kTree ? "tree" : "linear";
    const double host_us = host.AllreduceUs(bytes, ranks);
    std::printf("%10d %12.2f %12.2f %12.2f %10s %12.2f\n", count, linear,
                tree, selected, chosen_name, host_us);
    json::Object d;
    d["elems"] = json::Value(count);
    d["bytes"] = json::Value(static_cast<std::int64_t>(bytes));
    d["algorithm"] = json::Value(chosen_name);
    d["simulated_microseconds"] = json::Value(selected);
    d["host_model_microseconds"] = json::Value(host_us);
    decisions.push_back(json::Value(std::move(d)));
  }

  json::Object selector;
  selector["per_size"] = json::Value(std::move(decisions));
  selector["log"] = log.ToJson();
  selector["rules"] = defaults.ToJson();
  report.SetSection("selector", json::Value(std::move(selector)));
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  std::printf("validation: all runs match the host reference\n");
  return 0;
}
