/// \file bench_stencil_strong.cpp
/// Figure 15: stencil strong scaling — the same grid executed with
/// {1 bank/1 FPGA, 4 banks/1 FPGA, 1 bank/4 FPGAs, 4 banks/4 FPGAs,
/// 4 banks/8 FPGAs}, reporting speedup over the 1-bank/1-FPGA baseline.
/// Torus cabling; the paper observed identical times on a bus, which can be
/// checked with --bus.

#include "apps/stencil.h"
#include "bench_common.h"

namespace {

using namespace smi;
using namespace smi::bench;

struct Config {
  const char* label;
  int banks;
  int rx, ry;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_stencil_strong", "Fig. 15: stencil strong scaling");
  cli.AddInt("grid", 2048, "grid size (NxN)");
  cli.AddInt("timesteps", 8, "stencil timesteps");
  cli.AddFlag("full", "run the paper's 4096x4096, 32 timesteps (slow)");
  AddJsonOption(cli);
  AddObsOptions(cli);
  AddFidelityOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;
  core::ClusterConfig cluster_config;
  ConfigureObs(cli, cluster_config);
  ConfigureFidelity(cli, cluster_config);
  core::RunTelemetry obs;

  const bool full = cli.GetFlag("full");
  const int grid = full ? 4096 : static_cast<int>(cli.GetInt("grid"));
  const int steps = full ? 32 : static_cast<int>(cli.GetInt("timesteps"));
  PerfReport report("stencil_strong");
  report.SetParameter("grid", grid);
  report.SetParameter("timesteps", steps);

  const Config configs[] = {
      {"1 bank/1 FPGA", 1, 1, 1},  {"4 banks/1 FPGA", 4, 1, 1},
      {"1 bank/4 FPGAs", 1, 2, 2}, {"4 banks/4 FPGAs", 4, 2, 2},
      {"4 banks/8 FPGAs", 4, 2, 4},
  };

  PrintTitle("Figure 15 — stencil strong scaling, " + std::to_string(grid) +
             "x" + std::to_string(grid) + " grid, " + std::to_string(steps) +
             " timesteps");
  std::printf("%-18s %12s %10s\n", "configuration", "time [ms]", "speedup");
  double base_cycles = 0.0;
  for (const Config& c : configs) {
    apps::StencilConfig sc;
    sc.nx_global = grid;
    sc.ny_global = grid;
    sc.rx = c.rx;
    sc.ry = c.ry;
    sc.banks = c.banks;
    sc.timesteps = steps;
    sc.cluster = cluster_config;
    const WallTimer timer;
    const apps::StencilResult result = RunStencilSmi(sc);
    obs = result.telemetry;
    report.AddResult(c.label, result.run.cycles, result.run.microseconds,
                     timer.Seconds());
    const double cycles = static_cast<double>(result.run.cycles);
    if (base_cycles == 0.0) base_cycles = cycles;
    std::printf("%-18s %12.2f %9.2fx\n", c.label,
                result.run.seconds * 1e3, base_cycles / cycles);
  }
  std::printf("\n(paper, 4096x4096/32: 1.0x 254ms, 3.5x, 3.5x, 12.3x, "
              "23.1x)\n");
  MaybeWriteFidelity(report, obs.fidelity);
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
