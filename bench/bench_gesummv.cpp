/// \file bench_gesummv.cpp
/// Figure 13: GESUMMV speedup of the 2-rank distributed implementation over
/// the single-FPGA implementation, for square and rectangular matrices.
/// The distributed version has twice the aggregate memory bandwidth, so the
/// expected speedup of this memory-bound routine is ~2x.

#include "apps/gesummv.h"
#include "bench_common.h"

namespace {

using namespace smi;
using namespace smi::bench;

void RunShape(const char* title, const std::vector<std::size_t>& rows_list,
              const std::vector<std::size_t>& cols_list, PerfReport& report,
              const core::ClusterConfig& cluster_config,
              core::RunTelemetry& obs) {
  PrintTitle(title);
  std::printf("%8s %8s | %14s %14s %10s\n", "rows", "cols", "single [ms]",
              "distrib [ms]", "speedup");
  for (std::size_t i = 0; i < rows_list.size(); ++i) {
    apps::GesummvConfig config;
    config.rows = rows_list[i];
    config.cols = cols_list[i];
    config.cluster = cluster_config;
    const std::string shape = std::to_string(config.rows) + "x" +
                              std::to_string(config.cols);
    const WallTimer single_timer;
    const apps::GesummvResult single = apps::RunGesummvSingleFpga(config);
    report.AddResult("single/" + shape, single.run.cycles,
                     single.run.microseconds, single_timer.Seconds());
    const WallTimer dist_timer;
    const apps::GesummvResult dist = apps::RunGesummvDistributed(config);
    obs = dist.telemetry;
    report.AddResult("distributed/" + shape, dist.run.cycles,
                     dist.run.microseconds, dist_timer.Seconds());
    std::printf("%8zu %8zu | %14.2f %14.2f %9.2fx\n", config.rows,
                config.cols, single.run.seconds * 1e3,
                dist.run.seconds * 1e3,
                static_cast<double>(single.run.cycles) /
                    static_cast<double>(dist.run.cycles));
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_gesummv", "Fig. 13: GESUMMV single vs distributed");
  cli.AddFlag("full", "run the paper's full sizes up to 16384 (slow)");
  AddJsonOption(cli);
  AddObsOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  const bool full = cli.GetFlag("full");
  core::ClusterConfig cluster_config;
  ConfigureObs(cli, cluster_config);
  core::RunTelemetry obs;
  PerfReport report("gesummv");
  report.SetParameter("full", full);
  std::vector<std::size_t> square = {2048, 4096};
  if (full) {
    square.push_back(8192);
    square.push_back(16384);
  }
  RunShape("Figure 13 (left) — square matrices NxN", square, square, report,
           cluster_config, obs);

  std::vector<std::size_t> m = {4096, 8192};
  if (full) m.push_back(16384);
  RunShape("Figure 13 (middle) — rectangular 2048xM",
           std::vector<std::size_t>(m.size(), 2048), m, report,
           cluster_config, obs);
  RunShape("Figure 13 (right) — rectangular Nx2048", m,
           std::vector<std::size_t>(m.size(), 2048), report, cluster_config,
           obs);
  std::printf("\n(paper: ~2x speedup in all cases; distributed runtimes "
              "0.7/2.8/10.8/51.1 ms for square sizes 2048..16384)\n");
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
