/// \file bench_collective_tree.cpp
/// Ablation (beyond the paper's evaluation, §4.4 extension): linear vs
/// binomial-tree implementations of Bcast and Reduce on the 2x4 torus.
/// The paper attributes its Reduce's large-message losses partly to the
/// missing tree implementation ("the SMI reference implementation does not
/// yet implement tree-based collectives, resulting in a higher congestion
/// in the root rank") — this bench quantifies what the tree buys.

#include "bench_common.h"

namespace {

using namespace smi;
using namespace smi::bench;

sim::Kernel BcastApp(core::Context& ctx, int count, int root) {
  core::BcastChannel chan = ctx.OpenBcastChannel(
      count, core::DataType::kFloat, 0, root, ctx.world());
  for (int i = 0; i < count; ++i) {
    float v = ctx.rank() == root ? static_cast<float>(i) : 0.0f;
    co_await chan.Bcast(v);
  }
}

sim::Kernel ReduceApp(core::Context& ctx, int count, int root) {
  core::ReduceChannel chan = ctx.OpenReduceChannel(
      count, core::DataType::kFloat, core::ReduceOp::kAdd, 0, root,
      ctx.world(), /*credits=*/64);
  for (int i = 0; i < count; ++i) {
    float rcv = 0.0f;
    co_await chan.Reduce(static_cast<float>(i), rcv);
  }
}

double RunUs(core::CollKind kind, core::CollAlgo algo, int count,
             const std::string& label, PerfReport& report,
             const core::ClusterConfig& config, core::RunTelemetry& obs) {
  core::ProgramSpec spec;
  spec.Add(kind == core::CollKind::kBcast
               ? core::OpSpec::Bcast(0, core::DataType::kFloat, algo)
               : core::OpSpec::Reduce(0, core::DataType::kFloat, algo));
  core::Cluster cluster(net::Topology::Torus2D(2, 4), spec, config);
  for (int r = 0; r < 8; ++r) {
    if (kind == core::CollKind::kBcast) {
      cluster.AddKernel(r, BcastApp(cluster.context(r), count, 0), "app");
    } else {
      cluster.AddKernel(r, ReduceApp(cluster.context(r), count, 0), "app");
    }
  }
  const WallTimer timer;
  const core::RunResult result = cluster.Run();
  obs = cluster.CaptureTelemetry();
  report.AddResult(label + "/" + std::to_string(count), result.cycles,
                   result.microseconds, timer.Seconds());
  return result.microseconds;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_collective_tree",
                "ablation: linear vs tree collectives, 8 ranks, torus");
  cli.AddInt("max-elems", 65536, "largest message in FP32 elements");
  AddJsonOption(cli);
  AddObsOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  core::ClusterConfig config;
  ConfigureObs(cli, config);
  core::RunTelemetry obs;
  PerfReport report("collective_tree");
  report.SetParameter("max-elems", cli.GetInt("max-elems"));
  for (const core::CollKind kind :
       {core::CollKind::kBcast, core::CollKind::kReduce}) {
    const std::string name = core::CollKindName(kind);
    PrintTitle(name + " — linear vs binomial tree [usecs], 8 ranks, "
               "2x4 torus");
    std::printf("%10s %12s %12s %10s\n", "elems", "linear", "tree",
                "speedup");
    for (int count = 64;
         count <= static_cast<int>(cli.GetInt("max-elems")); count *= 8) {
      const double linear = RunUs(kind, core::CollAlgo::kLinear, count,
                                  name + "/linear", report, config, obs);
      const double tree = RunUs(kind, core::CollAlgo::kTree, count,
                                name + "/tree", report, config, obs);
      std::printf("%10d %12.2f %12.2f %9.2fx\n", count, linear, tree,
                  linear / tree);
    }
  }
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
