/// \file bench_scatter_gather.cpp
/// Ablation (beyond the paper's figures): Scatter and Gather timing vs
/// per-rank segment size and rank count. The paper defines both primitives
/// and their sequential-rendezvous protocols (§3.2/§4.4, Fig. 5) but does
/// not plot them; this bench characterizes the implementation the same way
/// Figs. 10-11 characterize Bcast and Reduce.

#include "bench_common.h"

namespace {

using namespace smi;
using namespace smi::bench;

sim::Kernel ScatterApp(core::Context& ctx, int count, int root) {
  core::ScatterChannel chan = ctx.OpenScatterChannel(
      count, core::DataType::kFloat, 0, root, ctx.world());
  const int n = ctx.world_size();
  if (ctx.rank() == root) {
    for (int i = 0; i < count * n; ++i) {
      const float snd = static_cast<float>(i);
      float rcv = 0.0f;
      (void)co_await chan.Scatter<float>(&snd, rcv);
    }
  } else {
    for (int i = 0; i < count; ++i) {
      float rcv = 0.0f;
      (void)co_await chan.Scatter<float>(nullptr, rcv);
    }
  }
}

sim::Kernel GatherApp(core::Context& ctx, int count, int root) {
  core::GatherChannel chan = ctx.OpenGatherChannel(
      count, core::DataType::kFloat, 0, root, ctx.world());
  const int n = ctx.world_size();
  if (ctx.rank() == root) {
    for (int i = 0; i < count * n; ++i) {
      float rcv = 0.0f;
      (void)co_await chan.Gather<float>(static_cast<float>(i), &rcv);
    }
  } else {
    for (int i = 0; i < count; ++i) {
      co_await chan.Gather<float>(static_cast<float>(i), nullptr);
    }
  }
}

double RunUs(core::CollKind kind, const net::Topology& topo, int count,
             const std::string& label, PerfReport& report,
             const core::ClusterConfig& config, core::RunTelemetry& obs) {
  core::ProgramSpec spec;
  spec.Add(kind == core::CollKind::kScatter
               ? core::OpSpec::Scatter(0, core::DataType::kFloat)
               : core::OpSpec::Gather(0, core::DataType::kFloat));
  core::Cluster cluster(topo, spec, config);
  for (int r = 0; r < topo.num_ranks(); ++r) {
    if (kind == core::CollKind::kScatter) {
      cluster.AddKernel(r, ScatterApp(cluster.context(r), count, 0), "app");
    } else {
      cluster.AddKernel(r, GatherApp(cluster.context(r), count, 0), "app");
    }
  }
  const WallTimer timer;
  const core::RunResult result = cluster.Run();
  obs = cluster.CaptureTelemetry();
  report.AddResult(label + "/" + std::to_string(count), result.cycles,
                   result.microseconds, timer.Seconds());
  return result.microseconds;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_scatter_gather",
                "Scatter/Gather time vs segment size (torus)");
  cli.AddInt("max-elems", 16384, "largest per-rank segment in FP32 elements");
  AddJsonOption(cli);
  AddObsOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  core::ClusterConfig config;
  ConfigureObs(cli, config);
  core::RunTelemetry obs;
  PerfReport report("scatter_gather");
  report.SetParameter("max-elems", cli.GetInt("max-elems"));
  for (const core::CollKind kind :
       {core::CollKind::kScatter, core::CollKind::kGather}) {
    const std::string name = core::CollKindName(kind);
    PrintTitle(name + " time [usecs] vs per-rank segment (root 0)");
    std::printf("%10s %12s %12s\n", "elems/rank", "torus-8", "torus-4");
    for (int count = 16;
         count <= static_cast<int>(cli.GetInt("max-elems")); count *= 8) {
      const double t8 = RunUs(kind, net::Topology::Torus2D(2, 4), count,
                              name + "/torus8", report, config, obs);
      const double t4 = RunUs(kind, net::Topology::Torus2D(2, 2), count,
                              name + "/torus4", report, config, obs);
      std::printf("%10d %12.2f %12.2f\n", count, t8, t4);
    }
  }
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
