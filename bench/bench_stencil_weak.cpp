/// \file bench_stencil_weak.cpp
/// Figure 16: stencil weak scaling — average execution time per grid point
/// (nanoseconds) for varying grid sizes, with 4 memory banks per FPGA, on
/// 4 and 8 ranks. At large grids 8 ranks approach a 2x advantage.

#include "apps/stencil.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace smi;
  using namespace smi::bench;

  CliParser cli("bench_stencil_weak", "Fig. 16: stencil weak scaling");
  cli.AddInt("timesteps", 8, "stencil timesteps");
  cli.AddInt("max-grid", 2048, "largest grid size (NxN)");
  AddJsonOption(cli);
  AddObsOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;
  core::ClusterConfig cluster_config;
  ConfigureObs(cli, cluster_config);
  core::RunTelemetry obs;

  const int steps = static_cast<int>(cli.GetInt("timesteps"));
  const int max_grid = static_cast<int>(cli.GetInt("max-grid"));
  PerfReport report("stencil_weak");
  report.SetParameter("timesteps", steps);
  report.SetParameter("max-grid", max_grid);

  PrintTitle("Figure 16 — time per stencil point [nsec], 4 banks/FPGA, " +
             std::to_string(steps) + " timesteps");
  std::printf("%14s %12s %12s %10s\n", "grid", "4 ranks", "8 ranks",
              "ratio");
  for (int grid = 512; grid <= max_grid; grid *= 2) {
    double ns[2] = {0, 0};
    const std::pair<int, int> shapes[2] = {{2, 2}, {2, 4}};
    for (int i = 0; i < 2; ++i) {
      apps::StencilConfig sc;
      sc.nx_global = grid;
      sc.ny_global = grid;
      sc.rx = shapes[i].first;
      sc.ry = shapes[i].second;
      sc.banks = 4;
      sc.timesteps = steps;
      sc.cluster = cluster_config;
      const WallTimer timer;
      const apps::StencilResult result = RunStencilSmi(sc);
      obs = result.telemetry;
      report.AddResult(std::to_string(shapes[i].first * shapes[i].second) +
                           "ranks/" + std::to_string(grid),
                       result.run.cycles, result.run.microseconds,
                       timer.Seconds());
      const double points = static_cast<double>(grid) *
                            static_cast<double>(grid) *
                            static_cast<double>(steps);
      ns[i] = result.run.seconds * 1e9 / points;
    }
    std::printf("%7dx%-6d %12.4f %12.4f %9.2fx\n", grid, grid, ns[0], ns[1],
                ns[0] / ns[1]);
  }
  std::printf("\n(paper: 8 ranks approach 2x over 4 ranks at large "
              "grids)\n");
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
