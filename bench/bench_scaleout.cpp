/// \file bench_scaleout.cpp
/// Scale-out sweep: bisection-exchange bandwidth on torus, fat-tree and
/// dragonfly fabrics from 16 to 512 compute ranks.
///
/// Pattern: compute rank i < C/2 streams `--bytes` to rank i + C/2, all
/// pairs concurrently, so every stream crosses the fabric bisection. A 2D
/// torus has O(sqrt C) bisection cables, so its per-rank bandwidth
/// collapses as C grows; a full-bisection fat-tree keeps one up-link per
/// stream and its per-rank bandwidth stays flat. Dragonfly sits between
/// (one global cable per group pair, Valiant-balanced).
///
/// Points at or below `--cycle-limit` compute ranks run cycle-accurate;
/// larger fabrics use `--fidelity` (default auto: the hybrid flow model)
/// so the 512-rank points finish in CI time. `--check-shape` asserts the
/// torus-saturates / fat-tree-scales shape and exits nonzero otherwise.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/error.h"
#include "common/perf_report.h"
#include "net/packet.h"
#include "net/routing.h"
#include "sim/fidelity.h"

namespace smi::bench {
namespace {

using core::Cluster;
using core::Context;
using core::DataType;
using core::RecvChannel;
using core::SendChannel;
using sim::Kernel;

Kernel PairSender(Context& ctx, int dst, int packets) {
  SendChannel ch = ctx.OpenSendChannel(packets * 7, DataType::kInt, dst, 0,
                                       ctx.world());
  std::int32_t vals[7] = {0, 1, 2, 3, 4, 5, 6};
  for (int p = 0; p < packets; ++p) {
    co_await ch.PushPacket<std::int32_t>(vals, 7);
  }
}

Kernel PairReceiver(Context& ctx, int src, int packets) {
  RecvChannel ch = ctx.OpenRecvChannel(packets * 7, DataType::kInt, src, 0,
                                       ctx.world());
  for (int p = 0; p < packets; ++p) {
    (void)co_await ch.PopPacket<std::int32_t>();
  }
}

/// Near-square 2D torus with `c` ranks: rows is the largest divisor of `c`
/// not exceeding sqrt(c).
net::Topology MakeTorus(int c) {
  int rows = 1;
  for (int r = 2; r * r <= c; ++r) {
    if (c % r == 0) rows = r;
  }
  if (rows < 2) throw ConfigError("torus sweep needs composite rank counts");
  return net::Topology::Torus2D(rows, c / rows);
}

struct SweepPoint {
  int compute_ranks = 0;
  int total_ranks = 0;
  bool fell_back = false;
  double modeled_fraction = 0.0;
  core::RunResult run;
  double aggregate_bytes_per_cycle = 0.0;
  core::RunTelemetry telemetry;
};

SweepPoint RunPoint(const net::Topology& topo, net::RoutingScheme scheme,
                    std::uint64_t route_seed, std::uint64_t bytes_per_stream,
                    core::ClusterConfig config) {
  SweepPoint pt;
  pt.total_ranks = topo.num_ranks();
  pt.compute_ranks = topo.num_compute_ranks();

  config.routing = scheme;
  config.routing_seed = route_seed;
  const int packets = static_cast<int>(
      (bytes_per_stream + net::kPayloadBytes - 1) / net::kPayloadBytes);

  Cluster cluster(topo, P2pSpec(), config);
  pt.fell_back = cluster.routing_fell_back();
  const std::vector<int> compute = topo.ComputeRankIds();
  const int pairs = static_cast<int>(compute.size()) / 2;
  for (int i = 0; i < pairs; ++i) {
    const int src = compute[static_cast<std::size_t>(i)];
    const int dst = compute[static_cast<std::size_t>(i + pairs)];
    cluster.AddKernel(src, PairSender(cluster.context(src), dst, packets),
                      "bisect-send");
    cluster.AddKernel(dst, PairReceiver(cluster.context(dst), src, packets),
                      "bisect-recv");
  }
  pt.run = cluster.Run();
  pt.telemetry = cluster.CaptureTelemetry();
  if (!pt.telemetry.fidelity.is_null()) {
    pt.modeled_fraction =
        pt.telemetry.fidelity.at("modeled_fraction").as_double();
  }
  const double total_bytes =
      static_cast<double>(pairs) * static_cast<double>(packets) *
      static_cast<double>(net::kPayloadBytes);
  pt.aggregate_bytes_per_cycle =
      pt.run.cycles > 0 ? total_bytes / static_cast<double>(pt.run.cycles)
                        : 0.0;
  return pt;
}

}  // namespace
}  // namespace smi::bench

int main(int argc, char** argv) {
  using namespace smi;
  using namespace smi::bench;

  CliParser cli("bench_scaleout",
                "bisection-exchange bandwidth sweep over scale-out "
                "topologies (torus / fat-tree / dragonfly, 16-512 ranks)");
  cli.AddInt("min-ranks", 16, "smallest compute rank count (power of two)");
  cli.AddInt("max-ranks", 512, "largest compute rank count (power of two)");
  cli.AddInt("bytes", 7168, "payload bytes per bisection stream");
  cli.AddInt("cycle-limit", 64,
             "largest compute rank count simulated cycle-accurately; larger "
             "points use --fidelity");
  cli.AddInt("route-seed", 1, "tie-break seed for the seeded routing schemes");
  cli.AddFlag("check-shape",
              "fail unless the torus per-rank bandwidth saturates while the "
              "fat-tree per-rank bandwidth keeps scaling");
  cli.AddDouble("saturation-factor", 0.35,
                "shape check: torus per-rank bandwidth retention from min to "
                "max ranks must fall below this");
  cli.AddDouble("scaling-factor", 0.4,
                "shape check: fat-tree per-rank bandwidth retention from min "
                "to max ranks must stay at or above this");
  AddJsonOption(cli);
  AddObsOptions(cli);
  AddFidelityOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  try {
    const int min_ranks = static_cast<int>(cli.GetInt("min-ranks"));
    const int max_ranks = static_cast<int>(cli.GetInt("max-ranks"));
    const int cycle_limit = static_cast<int>(cli.GetInt("cycle-limit"));
    const std::uint64_t bytes = static_cast<std::uint64_t>(cli.GetInt("bytes"));
    const std::uint64_t route_seed =
        static_cast<std::uint64_t>(cli.GetInt("route-seed"));
    if (min_ranks < 16 || max_ranks < min_ranks) {
      std::fprintf(stderr, "error: need 16 <= --min-ranks <= --max-ranks\n");
      return 2;
    }

    core::ClusterConfig base;
    ConfigureObs(cli, base);
    const bool fidelity_requested = ConfigureFidelity(cli, base);
    // Unlike the other benches (default cycle), the scale-out sweep defaults
    // its large points to the flow model. kAuto's steady window never opens
    // under bisection congestion (every stream sees constant backpressure),
    // so it would silently run everything cycle-accurate; kFlow promotes at
    // the first opportunity and still demotes on disturbance.
    const sim::FidelityMode big_mode =
        fidelity_requested ? base.engine.fidelity.mode
                           : sim::FidelityMode::kFlow;

    PerfReport report("scaleout");
    report.SetParameter("min_ranks", min_ranks);
    report.SetParameter("max_ranks", max_ranks);
    report.SetParameter("bytes", static_cast<std::int64_t>(bytes));
    report.SetParameter("cycle_limit", cycle_limit);
    report.SetParameter("route_seed", static_cast<std::int64_t>(route_seed));

    PrintTitle("scale-out bisection exchange: aggregate bandwidth vs ranks");
    std::printf("%-10s %-17s %7s %7s %10s %12s %10s %8s\n", "topology",
                "scheme", "ranks", "total", "cycles", "agg B/cyc", "B/cyc/rk",
                "modeled");

    json::Array rows;
    // per topology: compute-rank count -> bytes/cycle (per rank / aggregate)
    std::map<std::string, std::map<int, double>> per_rank;
    std::map<std::string, std::map<int, double>> aggregate;
    SweepPoint last;

    for (int c = min_ranks; c <= max_ranks; c *= 2) {
      for (int which = 0; which < 3; ++which) {
        std::string name;
        net::RoutingScheme scheme = net::RoutingScheme::kAuto;
        net::Topology topo(1, 1);
        if (which == 0) {
          name = "torus";
          topo = MakeTorus(c);
          scheme = net::RoutingScheme::kAuto;
        } else if (which == 1) {
          name = "fat-tree";
          // 8 hosts per leaf, 8 spines: full bisection at every size.
          topo = net::Topology::FatTree(8, c / 8, 8);
          scheme = net::RoutingScheme::kMinimalAdaptive;
        } else {
          if (c < 32) continue;  // dragonfly needs >= 2 groups of 16 hosts
          name = "dragonfly";
          topo = net::Topology::Dragonfly(c / 16, 4, 4);
          scheme = net::RoutingScheme::kValiant;
        }

        core::ClusterConfig config = base;
        const sim::FidelityMode mode =
            c <= cycle_limit ? sim::FidelityMode::kCycle : big_mode;
        config.engine.fidelity.mode = mode;

        WallTimer timer;
        SweepPoint pt = RunPoint(topo, scheme, route_seed, bytes, config);
        const double wall = timer.Seconds();

        const double per_rank_bpc =
            pt.aggregate_bytes_per_cycle / static_cast<double>(c);
        per_rank[name][c] = per_rank_bpc;
        aggregate[name][c] = pt.aggregate_bytes_per_cycle;

        std::printf("%-10s %-17s %7d %7d %10llu %12.3f %10.4f %7.1f%%%s\n",
                    name.c_str(), net::RoutingSchemeName(scheme),
                    pt.compute_ranks, pt.total_ranks,
                    static_cast<unsigned long long>(pt.run.cycles),
                    pt.aggregate_bytes_per_cycle, per_rank_bpc,
                    pt.modeled_fraction * 100.0,
                    pt.fell_back ? "  [up*/down* escape]" : "");

        report.AddResult(name + "/" + std::to_string(c) + "ranks",
                         pt.run.cycles, pt.run.microseconds, wall);

        json::Object row;
        row["topology"] = name;
        row["scheme"] = std::string(net::RoutingSchemeName(scheme));
        row["ranks"] = pt.compute_ranks;
        row["total_ranks"] = pt.total_ranks;
        row["cycles"] = pt.run.cycles;
        row["simulated_microseconds"] = pt.run.microseconds;
        row["wall_seconds"] = wall;
        row["aggregate_bytes_per_cycle"] = pt.aggregate_bytes_per_cycle;
        row["per_rank_bytes_per_cycle"] = per_rank_bpc;
        row["fidelity"] = std::string(sim::FidelityModeName(mode));
        row["modeled_fraction"] = pt.modeled_fraction;
        row["routing_fell_back"] = pt.fell_back;
        rows.push_back(json::Value(std::move(row)));

        last = std::move(pt);
      }
    }

    // Shape summary: per-rank bandwidth retention from the smallest to the
    // largest swept size. A saturating fabric's retention collapses (the
    // fixed bisection is shared by ever more streams); a scaling fabric's
    // stays flat.
    json::Object retention;
    PrintRule();
    for (const auto& [name, series] : per_rank) {
      if (series.size() < 2) continue;
      const double first = series.begin()->second;
      const double last_bpc = series.rbegin()->second;
      const double r = first > 0.0 ? last_bpc / first : 0.0;
      retention[name] = r;
      std::printf("per-rank bandwidth retention %-10s %.3f\n", name.c_str(),
                  r);
    }

    json::Object scaleout;
    scaleout["pattern"] = std::string("bisection-exchange");
    scaleout["points"] = json::Value(std::move(rows));
    scaleout["per_rank_retention"] = json::Value(retention);
    report.SetSection("scaleout", json::Value(std::move(scaleout)));

    int exit_code = 0;
    if (cli.GetFlag("check-shape")) {
      const double sat = cli.GetDouble("saturation-factor");
      const double scale = cli.GetDouble("scaling-factor");
      const double torus_r =
          retention.count("torus") != 0 ? retention["torus"].as_double() : 1.0;
      const double ft_r = retention.count("fat-tree") != 0
                              ? retention["fat-tree"].as_double()
                              : 0.0;
      if (torus_r >= sat) {
        std::fprintf(stderr,
                     "SHAPE FAIL: torus per-rank retention %.3f >= %.3f "
                     "(bisection did not saturate)\n",
                     torus_r, sat);
        exit_code = 1;
      }
      if (ft_r < scale) {
        std::fprintf(stderr,
                     "SHAPE FAIL: fat-tree per-rank retention %.3f < %.3f "
                     "(collectives stopped scaling)\n",
                     ft_r, scale);
        exit_code = 1;
      }
      if (aggregate.count("torus") != 0 && aggregate.count("fat-tree") != 0) {
        const double torus_agg = aggregate["torus"].rbegin()->second;
        const double ft_agg = aggregate["fat-tree"].rbegin()->second;
        if (ft_agg <= torus_agg) {
          std::fprintf(stderr,
                       "SHAPE FAIL: fat-tree aggregate %.1f B/cyc <= torus "
                       "%.1f B/cyc at max ranks\n",
                       ft_agg, torus_agg);
          exit_code = 1;
        }
      }
      if (exit_code == 0) {
        std::printf(
            "shape OK: torus saturates (%.3f < %.3f), fat-tree scales "
            "(%.3f >= %.3f)\n",
            torus_r, sat, ft_r, scale);
      }
    }

    MaybeWriteObs(cli, report, last.telemetry);
    MaybeWriteFidelity(report, last.telemetry.fidelity);
    MaybeWriteReport(cli, report);
    return exit_code;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
