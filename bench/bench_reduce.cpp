/// \file bench_reduce.cpp
/// Figure 11: time to reduce (SUM, FP32) a message of varying size across
/// 4 and 8 FPGAs, torus vs linear-bus cabling, against the host-based
/// MPI+OpenCL model. The SMI implementation uses the credit-based flow
/// control of §4.4, whose sensitivity to network latency is what makes SMI
/// lose its advantage at large message sizes in the paper.

#include "baseline/host_model.h"
#include "bench_common.h"

namespace {

using namespace smi;
using namespace smi::bench;

sim::Kernel ReduceApp(core::Context& ctx, int count, int root, int credits) {
  core::ReduceChannel chan = ctx.OpenReduceChannel(
      count, core::DataType::kFloat, core::ReduceOp::kAdd, /*port=*/0, root,
      ctx.world(), credits);
  for (int i = 0; i < count; ++i) {
    float rcv = 0.0f;
    co_await chan.Reduce(static_cast<float>(i + ctx.rank()), rcv);
  }
}

double ReduceUs(const net::Topology& topo, int count, int credits,
                const std::string& label, PerfReport& report,
                const core::ClusterConfig& config, core::RunTelemetry& obs) {
  core::ProgramSpec spec;
  spec.Add(core::OpSpec::Reduce(0, core::DataType::kFloat));
  core::Cluster cluster(topo, spec, config);
  for (int r = 0; r < topo.num_ranks(); ++r) {
    cluster.AddKernel(r,
                      ReduceApp(cluster.context(r), count, /*root=*/0,
                                credits),
                      "reduce");
  }
  const WallTimer timer;
  const core::RunResult result = cluster.Run();
  obs = cluster.CaptureTelemetry();
  report.AddResult(label + "/" + std::to_string(count), result.cycles,
                   result.microseconds, timer.Seconds());
  return result.microseconds;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_reduce", "Fig. 11: Reduce time vs message size");
  cli.AddInt("max-elems", 262144, "largest message in FP32 elements");
  cli.AddInt("credits", 64, "flow-control tile size C");
  cli.AddFlag("credit-sweep", "also sweep the credit tile size (ablation)");
  AddJsonOption(cli);
  AddObsOptions(cli);
  if (!cli.Parse(argc, argv)) return 2;

  core::ClusterConfig config;
  ConfigureObs(cli, config);
  core::RunTelemetry obs;
  const int credits = static_cast<int>(cli.GetInt("credits"));
  const baseline::HostModel host;
  PerfReport report("reduce");
  report.SetParameter("max-elems", cli.GetInt("max-elems"));
  report.SetParameter("credits", credits);
  PrintTitle("Figure 11 — Reduce time [usecs] (SUM FP32, lower is better)");
  std::printf("%10s %12s %12s %12s %12s %12s\n", "elems", "SMI-torus8",
              "SMI-torus4", "SMI-bus8", "SMI-bus4", "MPI+OpenCL8");
  for (int count = 1;
       count <= static_cast<int>(cli.GetInt("max-elems")); count *= 4) {
    const double torus8 =
        ReduceUs(net::Topology::Torus2D(2, 4), count, credits, "torus8",
                 report, config, obs);
    const double torus4 =
        ReduceUs(net::Topology::Torus2D(2, 2), count, credits, "torus4",
                 report, config, obs);
    const double bus8 = ReduceUs(net::Topology::Bus(8), count, credits,
                                 "bus8", report, config, obs);
    const double bus4 = ReduceUs(net::Topology::Bus(4), count, credits,
                                 "bus4", report, config, obs);
    const double mpi =
        host.ReduceUs(static_cast<std::uint64_t>(count) * 4, 8);
    std::printf("%10d %12.2f %12.2f %12.2f %12.2f %12.2f\n", count, torus8,
                torus4, bus8, bus4, mpi);
  }

  if (cli.GetFlag("credit-sweep")) {
    PrintTitle("ablation — Reduce time vs credit tile size C "
               "(torus, 8 ranks, 65536 elems)");
    std::printf("%10s %12s\n", "C", "usecs");
    for (const int c : {1, 4, 16, 64, 256, 1024}) {
      std::printf("%10d %12.2f\n", c,
                  ReduceUs(net::Topology::Torus2D(2, 4), 65536, c,
                           "credit-sweep/C=" + std::to_string(c), report,
                           config, obs));
    }
  }
  MaybeWriteObs(cli, report, obs);
  MaybeWriteReport(cli, report);
  return 0;
}
