#ifndef SMI_BENCH_BENCH_COMMON_H
#define SMI_BENCH_BENCH_COMMON_H

/// \file bench_common.h
/// Shared plumbing for the paper-reproduction benchmarks: point-to-point
/// stream/ping-pong drivers over a Cluster, and table formatting.

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/perf_report.h"
#include "common/string_util.h"
#include "core/smi.h"
#include "net/topology.h"

namespace smi::bench {

/// Register the shared `--json <path>` option. When given, the bench writes
/// its PerfReport there; pass "auto" for `./BENCH_<name>.json`.
void AddJsonOption(CliParser& cli);

/// Write `report` to the path selected by `--json` (no-op when the option
/// was left empty). Returns the path written, or "" if none.
std::string MaybeWriteReport(const CliParser& cli, const PerfReport& report);

/// Register the shared telemetry options: `--counters <path>` (per-entity
/// hardware counters) and `--trace <path>` (Chrome trace-event timeline).
/// Pass "auto" for `./COUNTERS_<name>.json` / `./TRACE_<name>.json`.
void AddObsOptions(CliParser& cli);

/// Flip the engine telemetry flags on `config` according to the CLI options
/// registered by AddObsOptions; returns true when any collection was
/// requested (collection stays off — and costs nothing — otherwise).
bool ConfigureObs(const CliParser& cli, core::ClusterConfig& config);

/// Write captured telemetry (see core::RunTelemetry) to the `--counters` /
/// `--trace` paths and embed the aggregate summary into `report` under
/// "observability". Call before MaybeWriteReport so the summary lands in
/// the report file. When a bench loops over several runs, pass the capture
/// of the run you want the documents for (conventionally the last).
void MaybeWriteObs(const CliParser& cli, PerfReport& report,
                   const core::RunTelemetry& obs);

/// Register the shared fault-injection options: `--fault-plan <spec|file>`
/// (inline spec like "drop=0.01,corrupt=0.001,budget=4" or a JSON plan
/// file; see fault/fault.h) and `--fault-seed <n>` (plan seed override).
void AddFaultOptions(CliParser& cli);

/// Parse `--fault-plan` into `config.fabric.fault`, applying a nonzero
/// `--fault-seed`. Returns true when a plan was enabled (the bench should
/// then run a faulty series and report the overhead vs the lossless runs).
bool ConfigureFaults(const CliParser& cli, core::ClusterConfig& config);

/// Embed the fault/reliability report under "faults" in the bench report
/// (no-op when `faults` is null, i.e. no plan was enabled).
void MaybeWriteFaults(PerfReport& report, const json::Value& faults);

/// Register the shared link-fidelity options: `--fidelity {cycle,flow,auto}`
/// (see sim/fidelity.h; default "cycle" keeps the cycle-accurate links) and
/// `--fidelity-calibration <file>` (flow-model calibration JSON; identity
/// constants when empty).
void AddFidelityOptions(CliParser& cli);

/// Parse the fidelity options into `config.engine.fidelity`. The mode token
/// is matched strictly ("Auto", "flow," and "" are rejected with a
/// ConfigError). Returns true when a non-cycle mode was selected.
bool ConfigureFidelity(const CliParser& cli, core::ClusterConfig& config);

/// Embed the link-fidelity report under "fidelity" in the bench report
/// (no-op when `fidelity` is null, i.e. cycle mode).
void MaybeWriteFidelity(PerfReport& report, const json::Value& fidelity);

/// The SPMD spec used by the microbenchmarks: one send and one recv
/// endpoint on port 0 of every rank.
inline core::ProgramSpec P2pSpec() {
  core::ProgramSpec spec;
  spec.Add(core::OpSpec::Send(0, core::DataType::kInt));
  spec.Add(core::OpSpec::Recv(0, core::DataType::kInt));
  return spec;
}

/// Stream `bytes` of payload from rank `src` to rank `dst` using the wide
/// (one packet per cycle) datapath; returns the run result. When `obs` is
/// non-null, the run's telemetry documents are captured into it.
core::RunResult StreamOnce(const net::Topology& topo, int src, int dst,
                           std::uint64_t bytes,
                           const core::ClusterConfig& config,
                           core::RunTelemetry* obs = nullptr);

/// One ping-pong round trip of a single-int message between ranks src and
/// dst; returns total cycles for the round trip. When `obs` is non-null,
/// the run's telemetry documents are captured into it.
sim::Cycle PingPongOnce(const net::Topology& topo, int src, int dst,
                        const core::ClusterConfig& config, int rounds = 1,
                        core::RunTelemetry* obs = nullptr);

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintTitle(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace smi::bench

#endif  // SMI_BENCH_BENCH_COMMON_H
