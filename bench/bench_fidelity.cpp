/// \file bench_fidelity.cpp
/// Hybrid-fidelity link sweep: wall-clock speedup and cycle divergence of
/// the flow-level fast path (sim/fidelity.h, sim/flow_link.h) against the
/// cycle-accurate baseline.
///
/// The workload is a relay chain of `ranks` serial links saturated by a
/// single source streaming `payloads` sequence numbers at line rate — the
/// steady-state regime the flow model is built for. Each (ranks, payloads)
/// shape runs under all three fidelity modes; the bench asserts that the
/// payload stream reaching the sink is bit-identical (FNV-1a digest) in
/// every mode and reports, per shape, the total-cycle divergence and the
/// wall-clock speedup of flow/auto over cycle. `--min-speedup` /
/// `--max-divergence` turn the reported figures into exit-code checks for
/// CI. The "fidelity" report section is the canonical document validated by
/// report_check: the auto run's per-link mode/demotion breakdown plus the
/// sweep table.

#include <cinttypes>
#include <vector>

#include "bench_common.h"
#include "sim/flow_link.h"

namespace {

using namespace smi;
using namespace smi::bench;

sim::Kernel Source(sim::Fifo<std::uint32_t>& out, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim::fifo_push(out, static_cast<std::uint32_t>(i));
  }
}

sim::Kernel Sink(sim::Fifo<std::uint32_t>& in, int n, std::uint64_t& digest) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (int i = 0; i < n; ++i) {
    h ^= co_await sim::fifo_pop(in);
    h *= 1099511628211ull;
  }
  digest = h;
}

struct Outcome {
  sim::Cycle cycles = 0;
  double wall_seconds = 0.0;
  std::uint64_t digest = 0;
  json::Value fidelity;  ///< FidelityReportJson (null in cycle mode)
};

Outcome RunChain(int hops, int payloads, std::size_t depth, sim::Cycle latency,
                 const sim::FidelityPolicy& policy) {
  sim::EngineConfig config;
  config.fidelity = policy;
  sim::Engine engine(config);

  std::vector<sim::Fifo<std::uint32_t>*> fifos;
  for (int i = 0; i <= hops; ++i) {
    fifos.push_back(
        &engine.MakeFifo<std::uint32_t>("f" + std::to_string(i), depth));
  }
  for (int i = 0; i < hops; ++i) {
    engine.MakeComponent<sim::FlowLink<std::uint32_t>>(
        engine, "link" + std::to_string(i), *fifos[static_cast<std::size_t>(i)],
        *fifos[static_cast<std::size_t>(i) + 1], latency, policy);
  }

  Outcome out;
  engine.AddKernel(Source(*fifos.front(), payloads), "source");
  engine.AddKernel(Sink(*fifos.back(), payloads, out.digest), "sink");
  const WallTimer timer;
  const sim::RunStats stats = engine.Run();
  out.cycles = stats.cycles;
  out.wall_seconds = timer.Seconds();
  if (policy.enabled()) {
    const std::vector<sim::FlowLinkControl*>& regs = engine.flow_links();
    const std::vector<const sim::FlowLinkControl*> links(regs.begin(),
                                                         regs.end());
    out.fidelity = sim::FidelityReportJson(policy.mode, links);
  }
  return out;
}

double Pct(sim::Cycle value, sim::Cycle reference) {
  if (reference == 0) return 0.0;
  const double d = static_cast<double>(value) - static_cast<double>(reference);
  return 100.0 * (d < 0 ? -d : d) / static_cast<double>(reference);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_fidelity",
                "flow-level fast path: speedup and divergence vs cycle "
                "accuracy");
  cli.AddInt("ranks", 64, "largest relay-chain length; sweeps 8,16,..,ranks");
  cli.AddInt("payloads", 200000, "payloads streamed through the chain");
  cli.AddInt("fifo-depth", 128, "inter-hop FIFO depth");
  cli.AddInt("latency", 16, "per-hop link latency in cycles");
  cli.AddInt("interval", 32, "target cycles between modeled flow wakes");
  cli.AddDouble("min-speedup", 0.0,
                "fail unless auto beats cycle wall-clock by this factor on "
                "the largest shape (0 = report only)");
  cli.AddDouble("max-divergence", 2.0,
                "fail when an auto run at the full payload count diverges "
                "from the cycle-accurate cycles by more than this percentage "
                "(the quarter-size rows expose the stream-tail boundary "
                "error, which shrinks as ranks*interval/payloads)");
  cli.AddString("fidelity-calibration", "",
                "flow-model calibration constants, a JSON file like "
                "data/fidelity_calibration.json (empty = identity constants)");
  AddJsonOption(cli);
  if (!cli.Parse(argc, argv)) return 2;

  const int max_ranks = static_cast<int>(cli.GetInt("ranks"));
  const int payloads = static_cast<int>(cli.GetInt("payloads"));
  const std::size_t depth = static_cast<std::size_t>(cli.GetInt("fifo-depth"));
  const sim::Cycle latency = static_cast<sim::Cycle>(cli.GetInt("latency"));
  const double min_speedup = cli.GetDouble("min-speedup");
  const double max_divergence = cli.GetDouble("max-divergence");

  sim::FidelityPolicy base;
  base.flow_interval = static_cast<sim::Cycle>(cli.GetInt("interval"));
  const std::string calib = cli.GetString("fidelity-calibration");
  if (!calib.empty()) {
    base.calibration = sim::FidelityCalibration::FromFile(calib);
  }

  PerfReport report("fidelity");
  report.SetParameter("ranks", max_ranks);
  report.SetParameter("payloads", payloads);
  report.SetParameter("fifo-depth", cli.GetInt("fifo-depth"));
  report.SetParameter("latency", cli.GetInt("latency"));
  report.SetParameter("interval", cli.GetInt("interval"));

  std::vector<int> shapes;
  for (int r = 8; r < max_ranks; r *= 2) shapes.push_back(r);
  if (shapes.empty() || shapes.back() != max_ranks) shapes.push_back(max_ranks);
  const int sizes[2] = {payloads / 4 > 0 ? payloads / 4 : 1, payloads};

  PrintTitle("hybrid fidelity — relay chain, line-rate stream");
  std::printf("%6s %9s %6s %12s %12s %9s %9s %10s\n", "ranks", "payloads",
              "mode", "cycles", "wall [ms]", "speedup", "diverge", "modeled");

  json::Array sweep;
  json::Value headline_fidelity;
  double headline_speedup = 0.0;
  double worst_divergence = 0.0;
  bool ok = true;

  for (const int ranks : shapes) {
    for (const int n : sizes) {
      Outcome per_mode[3];
      const sim::FidelityMode modes[3] = {sim::FidelityMode::kCycle,
                                          sim::FidelityMode::kFlow,
                                          sim::FidelityMode::kAuto};
      for (int m = 0; m < 3; ++m) {
        sim::FidelityPolicy policy = base;
        policy.mode = modes[m];
        per_mode[m] = RunChain(ranks, n, depth, latency, policy);

        const Outcome& cyc = per_mode[0];
        const Outcome& cur = per_mode[m];
        const double speedup = cur.wall_seconds > 0.0
                                   ? cyc.wall_seconds / cur.wall_seconds
                                   : 0.0;
        const double divergence = Pct(cur.cycles, cyc.cycles);
        double modeled = 0.0;
        if (cur.fidelity.is_object()) {
          modeled = cur.fidelity.at("modeled_fraction").as_double();
        }
        const std::string label = std::to_string(ranks) + "ranks/" +
                                  std::to_string(n) + "msgs/" +
                                  sim::FidelityModeName(modes[m]);
        report.AddResult(label, cur.cycles, 0.0, cur.wall_seconds);
        std::printf("%6d %9d %6s %12llu %12.2f %8.2fx %8.2f%% %9.1f%%\n",
                    ranks, n, sim::FidelityModeName(modes[m]),
                    static_cast<unsigned long long>(cur.cycles),
                    cur.wall_seconds * 1e3, speedup, divergence,
                    100.0 * modeled);

        if (cur.digest != cyc.digest) {
          std::printf("PAYLOAD DIGEST MISMATCH: %s (%016" PRIx64
                      " vs cycle %016" PRIx64 ")\n",
                      label.c_str(), cur.digest, cyc.digest);
          ok = false;
        }
        if (modes[m] == sim::FidelityMode::kAuto && n == payloads) {
          if (divergence > worst_divergence) worst_divergence = divergence;
          if (ranks == shapes.back()) {
            headline_speedup = speedup;
            headline_fidelity = cur.fidelity;
          }
        }

        json::Object row;
        row["ranks"] = json::Value(static_cast<std::int64_t>(ranks));
        row["payloads"] = json::Value(static_cast<std::int64_t>(n));
        row["mode"] = json::Value(std::string(
            sim::FidelityModeName(modes[m])));
        row["cycles"] = json::Value(static_cast<std::uint64_t>(cur.cycles));
        row["wall_seconds"] = json::Value(cur.wall_seconds);
        row["speedup"] = json::Value(speedup);
        row["divergence_pct"] = json::Value(divergence);
        row["modeled_fraction"] = json::Value(modeled);
        sweep.push_back(json::Value(std::move(row)));
      }
    }
  }

  if (headline_fidelity.is_object()) {
    json::Object& section = headline_fidelity.as_object();
    section["speedup"] = json::Value(headline_speedup);
    section["worst_divergence_pct"] = json::Value(worst_divergence);
    section["sweep"] = json::Value(std::move(sweep));
    report.SetSection("fidelity", headline_fidelity);
  }

  std::printf("\nheadline: auto vs cycle on the largest shape: %.2fx "
              "wall-clock, worst auto divergence %.2f%%\n",
              headline_speedup, worst_divergence);

  if (worst_divergence > max_divergence) {
    std::printf("FAIL: divergence %.2f%% exceeds --max-divergence %.2f%%\n",
                worst_divergence, max_divergence);
    ok = false;
  }
  if (min_speedup > 0.0 && headline_speedup < min_speedup) {
    std::printf("FAIL: speedup %.2fx below --min-speedup %.2fx\n",
                headline_speedup, min_speedup);
    ok = false;
  }
  MaybeWriteReport(cli, report);
  return ok ? 0 : 1;
}
