/// \file bench_sim_micro.cpp
/// Wall-clock microbenchmarks (google-benchmark) of the simulation
/// substrate itself: FIFO throughput, engine cycle rate with a realistic
/// fabric, route generation, and packet header codec. These track the
/// simulator's own performance, which bounds how large the paper
/// experiments can be driven.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "net/routing.h"

namespace {

using namespace smi;

void BM_FifoPushPop(benchmark::State& state) {
  sim::Fifo<int> fifo("bench", 64);
  sim::Cycle now = 0;
  for (auto _ : state) {
    if (fifo.CanPush(now)) fifo.Push(1, now);
    if (fifo.CanPop(now)) benchmark::DoNotOptimize(fifo.Pop(now));
    fifo.Commit();
    ++now;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_FifoPushPop);

void BM_HeaderCodec(benchmark::State& state) {
  std::uint32_t wire = 0;
  for (auto _ : state) {
    net::Header h;
    h.src = static_cast<std::uint8_t>(wire & 0xff);
    h.dst = 3;
    h.port = 7;
    h.count = 5;
    wire = h.Encode();
    benchmark::DoNotOptimize(net::Header::Decode(wire));
  }
}
BENCHMARK(BM_HeaderCodec);

void BM_EngineCyclesPerSecond(benchmark::State& state) {
  // Stream packets across a 2-rank fabric and report simulated cycles per
  // wall second — the key throughput figure of the whole simulator.
  const net::Topology topo = net::Topology::Bus(2);
  std::uint64_t total_cycles = 0;
  for (auto _ : state) {
    const core::RunResult r = bench::StreamOnce(
        topo, 0, 1, 64 * 1024, core::ClusterConfig{});
    total_cycles += r.cycles;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineCyclesPerSecond)->Unit(benchmark::kMillisecond);

void BM_RouteGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const net::Topology topo =
      net::Topology::Torus2D(2, n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::ComputeRoutes(topo, net::RoutingScheme::kAuto));
  }
}
BENCHMARK(BM_RouteGeneration)->Arg(8)->Arg(16)->Arg(32);

void BM_DeadlockCheck(benchmark::State& state) {
  const net::Topology topo = net::Topology::Torus2D(4, 4);
  const net::RoutingTable routes =
      net::ComputeRoutes(topo, net::RoutingScheme::kUpDown);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::IsDeadlockFree(topo, routes));
  }
}
BENCHMARK(BM_DeadlockCheck);

}  // namespace

BENCHMARK_MAIN();
