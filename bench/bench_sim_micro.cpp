/// \file bench_sim_micro.cpp
/// Wall-clock microbenchmarks (google-benchmark) of the simulation
/// substrate itself: FIFO throughput, engine cycle rate with a realistic
/// fabric, route generation, and packet header codec. These track the
/// simulator's own performance, which bounds how large the paper
/// experiments can be driven.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "net/routing.h"

namespace {

using namespace smi;

void BM_FifoPushPop(benchmark::State& state) {
  sim::Fifo<int> fifo("bench", 64);
  sim::Cycle now = 0;
  for (auto _ : state) {
    if (fifo.CanPush(now)) fifo.Push(1, now);
    if (fifo.CanPop(now)) benchmark::DoNotOptimize(fifo.Pop(now));
    fifo.Commit(now);
    ++now;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_FifoPushPop);

void BM_HeaderCodec(benchmark::State& state) {
  std::uint32_t wire = 0;
  for (auto _ : state) {
    net::Header h;
    h.src = static_cast<std::uint8_t>(wire & 0xff);
    h.dst = 3;
    h.port = 7;
    h.count = 5;
    wire = h.Encode();
    benchmark::DoNotOptimize(net::Header::Decode(wire));
  }
}
BENCHMARK(BM_HeaderCodec);

void BM_EngineCyclesPerSecond(benchmark::State& state) {
  // Stream packets across a 2-rank fabric and report simulated cycles per
  // wall second — the key throughput figure of the whole simulator.
  const net::Topology topo = net::Topology::Bus(2);
  std::uint64_t total_cycles = 0;
  for (auto _ : state) {
    const core::RunResult r = bench::StreamOnce(
        topo, 0, 1, 64 * 1024, core::ClusterConfig{});
    total_cycles += r.cycles;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineCyclesPerSecond)->Unit(benchmark::kMillisecond);

// An idle-heavy stencil-like pattern on the paper's 8-rank torus: each rank
// "computes" for ~1500 cycles (WaitCycles), then exchanges one small message
// with its neighbour, repeated for a fixed number of timesteps. Nearly every
// simulated cycle is idle, which is exactly what the event-driven scheduler
// exploits — the synchronous scheduler still walks all ~800 FIFOs and 64
// components on each of them. One row per scheduler: Arg(0) = synchronous,
// Arg(1) = event-driven, Arg(2) = parallel (worker threads = hardware
// concurrency, capped at the rank count).
sim::Kernel IdleStencilRank(core::Context& ctx, int steps, int compute_cycles,
                            std::uint64_t& sink) {
  const int n = ctx.world().size();
  const int right = (ctx.rank() + 1) % n;
  for (int t = 0; t < steps; ++t) {
    co_await sim::WaitCycles{static_cast<sim::Cycle>(compute_cycles)};
    core::SendChannel chs = ctx.OpenSendChannel(
        4, core::DataType::kInt, right, /*port=*/0, ctx.world());
    core::RecvChannel chr = ctx.OpenRecvChannel(
        4, core::DataType::kInt, (ctx.rank() + n - 1) % n, /*port=*/0,
        ctx.world());
    for (int i = 0; i < 4; ++i) {
      co_await chs.Push<std::int32_t>(t * 4 + i);
    }
    for (int i = 0; i < 4; ++i) {
      sink += static_cast<std::uint64_t>(co_await chr.Pop<std::int32_t>());
    }
  }
}

void BM_IdleHeavyStencil(benchmark::State& state) {
  const sim::SchedulerKind kind =
      state.range(0) == 0   ? sim::SchedulerKind::kSynchronous
      : state.range(0) == 1 ? sim::SchedulerKind::kEventDriven
                            : sim::SchedulerKind::kParallel;
  const net::Topology topo = net::Topology::Torus2D(2, 4);
  std::uint64_t total_cycles = 0;
  for (auto _ : state) {
    core::ClusterConfig config;
    config.engine.scheduler = kind;
    if (kind == sim::SchedulerKind::kParallel) {
      config.engine.threads = 0;  // hardware concurrency, capped at 8 ranks
    }
    core::Cluster cluster(topo, bench::P2pSpec(), config);
    std::uint64_t sink = 0;
    for (int r = 0; r < topo.num_ranks(); ++r) {
      cluster.AddKernel(r,
                        IdleStencilRank(cluster.context(r), /*steps=*/20,
                                        /*compute_cycles=*/1500, sink),
                        "stencil");
    }
    const core::RunResult result = cluster.Run();
    total_cycles += result.cycles;
    benchmark::DoNotOptimize(sink);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(total_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IdleHeavyStencil)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("scheduler")
    ->Unit(benchmark::kMillisecond);

void BM_RouteGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const net::Topology topo =
      net::Topology::Torus2D(2, n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::ComputeRoutes(topo, net::RoutingScheme::kAuto));
  }
}
BENCHMARK(BM_RouteGeneration)->Arg(8)->Arg(16)->Arg(32);

void BM_DeadlockCheck(benchmark::State& state) {
  const net::Topology topo = net::Topology::Torus2D(4, 4);
  const net::RoutingTable routes =
      net::ComputeRoutes(topo, net::RoutingScheme::kUpDown);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::IsDeadlockFree(topo, routes));
  }
}
BENCHMARK(BM_DeadlockCheck);

}  // namespace

// Custom main so this binary honours the repo-wide `--json <path>` bench
// convention: the flag is translated to google-benchmark's native JSON file
// reporter (--benchmark_out), which carries the same cycles-per-wall-second
// counters the console shows. The repo-wide `--counters` / `--trace`
// telemetry options run one dedicated instrumented 64 KiB stream (the
// google-benchmark loops themselves stay uninstrumented so the measured
// rates reflect the disabled-path cost).
int main(int argc, char** argv) {
  using namespace smi;
  std::vector<std::string> args;
  std::string json_path, counters_path, trace_path;
  const auto take = [&](const std::string& arg, const char* name,
                        std::string& out, int& i) {
    const std::string eq = std::string("--") + name + "=";
    if (arg.rfind(eq, 0) == 0) {
      out = arg.substr(eq.size());
      return true;
    }
    if (arg == std::string("--") + name && i + 1 < argc) {
      out = argv[++i];
      return true;
    }
    return false;
  };
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (take(arg, "json", json_path, i)) continue;
    if (take(arg, "counters", counters_path, i)) continue;
    if (take(arg, "trace", trace_path, i)) continue;
    args.push_back(arg);
  }
  if (!json_path.empty()) {
    if (json_path == "auto") json_path = "BENCH_sim_micro.json";
    args.push_back("--benchmark_out_format=json");
    args.push_back("--benchmark_out=" + json_path);
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!counters_path.empty() || !trace_path.empty()) {
    core::ClusterConfig config;
    config.engine.collect_counters = !counters_path.empty();
    config.engine.collect_trace = !trace_path.empty();
    core::RunTelemetry obs;
    (void)bench::StreamOnce(net::Topology::Bus(2), 0, 1, 64 * 1024, config,
                            &obs);
    if (!counters_path.empty()) {
      if (counters_path == "auto") counters_path = "COUNTERS_sim_micro.json";
      json::WriteFile(counters_path, obs.counters);
      std::printf("wrote %s\n", counters_path.c_str());
    }
    if (!trace_path.empty()) {
      if (trace_path == "auto") trace_path = "TRACE_sim_micro.json";
      json::WriteFile(trace_path, obs.trace);
      std::printf("wrote %s\n", trace_path.c_str());
    }
  }
  return 0;
}
